//! The dynamic call-level simulation of Section VI.
//!
//! "Each call is a randomly shifted version of a Star Wars RCBR schedule.
//! Calls arrive according to a Poisson process of rate λ." Because every
//! call follows a piecewise-CBR schedule, only *renegotiation events* need
//! simulating (footnote 4), which is what makes these experiments cheap.
//!
//! Semantics of a failed upward renegotiation follow Section V-B: "the
//! source has to temporarily settle for whatever bandwidth remaining in
//! the link until more bandwidth becomes available" — so a failed call is
//! granted the link's remaining headroom, and freed capacity (departures,
//! downward renegotiations) is redistributed to calls still short of their
//! demand.
//!
//! Measurements follow the paper: each window of one trace duration yields
//! one sample of the renegotiation failure probability and of the
//! utilization; sampling stops when the 95% confidence intervals are
//! within 20% of the estimates, or once the failure CI lies entirely below
//! the target.

use rcbr_schedule::Schedule;
use rcbr_sim::stats::{RunningStats, StopDecision, StoppingRule};
use rcbr_sim::{Scheduler, SimRng, TimeWeighted};
use serde::{Deserialize, Serialize};

use crate::policy::{AdmissionController, AdmissionSnapshot};

/// Configuration of the call-level simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallSimConfig {
    /// Link capacity, bits/second.
    pub capacity: f64,
    /// Poisson call arrival rate, calls/second.
    pub arrival_rate: f64,
    /// QoS target on the renegotiation failure probability (drives the
    /// early-exit stopping rule).
    pub target_failure: f64,
    /// RNG seed.
    pub seed: u64,
    /// Measurement windows to discard as warm-up.
    pub warmup_windows: u64,
    /// Hard cap on measurement windows.
    pub max_windows: u64,
    /// Required relative half-width of the 95% CIs (the paper uses 0.2).
    pub relative_precision: f64,
}

impl CallSimConfig {
    /// A configuration with the paper's measurement rules.
    ///
    /// # Panics
    /// Panics on non-positive capacity/arrival rate or a target outside
    /// `(0, 1)`.
    pub fn new(capacity: f64, arrival_rate: f64, target_failure: f64, seed: u64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(arrival_rate > 0.0, "arrival rate must be positive");
        assert!(
            target_failure > 0.0 && target_failure < 1.0,
            "target must be in (0, 1)"
        );
        Self {
            capacity,
            arrival_rate,
            target_failure,
            seed,
            warmup_windows: 1,
            max_windows: 200,
            relative_precision: 0.2,
        }
    }

    /// Replace the window cap.
    pub fn with_max_windows(mut self, n: u64) -> Self {
        self.max_windows = n;
        self
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallSimReport {
    /// Steady-state renegotiation failure probability (failed upward
    /// attempts / upward attempts; the initial allocation counts as an
    /// upward attempt from zero).
    pub failure_probability: f64,
    /// Time-average of reserved bandwidth divided by capacity.
    pub utilization: f64,
    /// Fraction of arrivals rejected by the controller.
    pub blocking_probability: f64,
    /// Time-average number of calls in the system.
    pub mean_calls: f64,
    /// Measurement windows used (after warm-up).
    pub windows: u64,
    /// Why sampling stopped.
    pub decision: StopDecision,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival,
    Departure { call: usize },
    Renegotiate { call: usize, event_idx: usize },
    WindowEnd,
}

#[derive(Debug, Clone)]
struct Call {
    granted: f64,
    demanded: f64,
    /// Precomputed (local time, new rate) renegotiation events.
    events: Vec<(f64, f64)>,
    alive: bool,
}

/// One class of calls: a base schedule plus a mixing weight.
#[derive(Debug, Clone)]
struct CallClass {
    segments: Vec<(usize, f64)>,
    num_slots: usize,
    slot: f64,
    weight: f64,
}

impl CallClass {
    fn from_schedule(schedule: &Schedule, weight: f64) -> Self {
        Self {
            segments: schedule
                .segments()
                .iter()
                .map(|s| (s.start, s.rate))
                .collect(),
            num_slots: schedule.num_slots(),
            slot: schedule.slot_duration(),
            weight,
        }
    }

    fn duration(&self) -> f64 {
        self.num_slots as f64 * self.slot
    }

    /// Initial demanded rate and the renegotiation events of a call with
    /// circular shift `offset` slots: each event is `(local time s, new
    /// rate)`, strictly increasing in time.
    fn shifted_events(&self, offset: usize) -> (f64, Vec<(f64, f64)>) {
        let n = self.num_slots;
        let offset = offset % n;
        let segs = &self.segments;
        // Segment containing slot `offset`.
        let i0 = segs.partition_point(|&(start, _)| start <= offset) - 1;
        let initial_rate = segs[i0].1;
        let mut events: Vec<(f64, f64)> = Vec::with_capacity(segs.len());
        for (k, &(start, rate)) in segs.iter().enumerate() {
            let local_slot = (start + n - offset) % n;
            if local_slot == 0 {
                debug_assert_eq!(k, i0, "only the initial segment maps to local slot 0");
                continue;
            }
            events.push((local_slot as f64 * self.slot, rate));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        (initial_rate, events)
    }
}

/// The call-level simulator. Calls are random circular shifts of one or
/// more base schedules (a heterogeneous mix, e.g. pristine playback vs.
/// interactive sessions).
#[derive(Debug, Clone)]
pub struct CallSim {
    classes: Vec<CallClass>,
    config: CallSimConfig,
}

impl CallSim {
    /// Create a simulator whose calls are random circular shifts of
    /// `schedule`.
    pub fn new(schedule: &Schedule, config: CallSimConfig) -> Self {
        Self {
            classes: vec![CallClass::from_schedule(schedule, 1.0)],
            config,
        }
    }

    /// Create a simulator over a weighted mix of call classes: an arriving
    /// call is of class `i` with probability proportional to its weight.
    ///
    /// # Panics
    /// Panics if `mix` is empty or any weight is nonpositive.
    pub fn new_mixed(mix: &[(Schedule, f64)], config: CallSimConfig) -> Self {
        assert!(!mix.is_empty(), "need at least one call class");
        assert!(
            mix.iter().all(|&(_, w)| w > 0.0),
            "class weights must be positive"
        );
        Self {
            classes: mix
                .iter()
                .map(|(s, w)| CallClass::from_schedule(s, *w))
                .collect(),
            config,
        }
    }

    /// Duration of the longest call class (= one measurement window),
    /// seconds.
    pub fn call_duration(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.duration())
            .fold(0.0f64, f64::max)
    }

    #[cfg(test)]
    fn shifted_events(&self, offset: usize) -> (f64, Vec<(f64, f64)>) {
        self.classes[0].shifted_events(offset)
    }

    /// Run the simulation under `controller`.
    pub fn run(&self, controller: &mut dyn AdmissionController) -> CallSimReport {
        let cfg = &self.config;
        let mut rng = SimRng::from_seed(cfg.seed);
        let mut sched: Scheduler<Event> = Scheduler::new();
        let mut calls: Vec<Call> = Vec::new();
        let window = self.call_duration();

        let mut total_granted = 0.0f64;
        let mut reserved_tw = TimeWeighted::new(0.0, 0.0);
        let mut calls_tw = TimeWeighted::new(0.0, 0.0);

        // Per-window counters.
        let mut win_attempts = 0u64;
        let mut win_failures = 0u64;
        let mut win_start = 0.0f64;
        let mut reserved_integral_mark = 0.0f64;

        // Aggregates.
        let mut arrivals_total = 0u64;
        let mut blocked_total = 0u64;

        let mut failure_stats = RunningStats::new();
        let mut util_stats = RunningStats::new();
        let failure_rule = StoppingRule {
            relative_precision: cfg.relative_precision,
            use_ci: true,
            below_target: Some(cfg.target_failure),
            min_samples: 5,
            max_samples: cfg.max_windows,
        };
        let util_rule = StoppingRule {
            relative_precision: cfg.relative_precision,
            use_ci: true,
            below_target: None,
            min_samples: 5,
            max_samples: cfg.max_windows,
        };

        sched.schedule_in(rng.exponential(cfg.arrival_rate), Event::Arrival);
        sched.schedule_in(window, Event::WindowEnd);

        let mut windows_done = 0u64;
        let mut decision = StopDecision::BudgetExhausted;

        while let Some((now, event)) = sched.next_event() {
            match event {
                Event::Arrival => {
                    sched.schedule_in(rng.exponential(cfg.arrival_rate), Event::Arrival);
                    arrivals_total += 1;
                    let reservations: Vec<f64> = calls
                        .iter()
                        .filter(|c| c.alive)
                        .map(|c| c.granted)
                        .collect();
                    let snapshot = AdmissionSnapshot {
                        capacity: cfg.capacity,
                        time: now,
                        reservations: &reservations,
                    };
                    controller.observe(&snapshot);
                    if !controller.admit(&snapshot) {
                        blocked_total += 1;
                        continue;
                    }
                    let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
                    let class = &self.classes[rng.discrete(&weights)];
                    let offset = rng.index(class.num_slots);
                    let (initial_rate, events) = class.shifted_events(offset);
                    // Initial allocation is an upward attempt from zero.
                    win_attempts += 1;
                    let headroom = (cfg.capacity - total_granted).max(0.0);
                    let granted = initial_rate.min(headroom);
                    if granted + 1e-9 < initial_rate {
                        win_failures += 1;
                    }
                    let id = calls.len();
                    for (k, &(lt, _)) in events.iter().enumerate() {
                        sched.schedule_at(
                            now + lt,
                            Event::Renegotiate {
                                call: id,
                                event_idx: k,
                            },
                        );
                    }
                    sched.schedule_at(now + class.duration(), Event::Departure { call: id });
                    calls.push(Call {
                        granted,
                        demanded: initial_rate,
                        events,
                        alive: true,
                    });
                    total_granted += granted;
                    reserved_tw.set(now, total_granted);
                    calls_tw.add(now, 1.0);
                }
                Event::Departure { call } => {
                    let c = &mut calls[call];
                    debug_assert!(c.alive, "departure of a dead call");
                    c.alive = false;
                    total_granted -= c.granted;
                    c.granted = 0.0;
                    c.demanded = 0.0;
                    self.redistribute(&mut calls, &mut total_granted);
                    reserved_tw.set(now, total_granted);
                    calls_tw.add(now, -1.0);
                    self.notify(controller, &calls, now, cfg.capacity);
                }
                Event::Renegotiate { call, event_idx } => {
                    let (new_rate, old_granted, old_demanded) = {
                        let c = &calls[call];
                        if !c.alive {
                            continue;
                        }
                        (c.events[event_idx].1, c.granted, c.demanded)
                    };
                    if new_rate == old_demanded {
                        // Wrap-around boundary with no real change.
                        continue;
                    }
                    let c = &mut calls[call];
                    c.demanded = new_rate;
                    if new_rate < old_granted {
                        // Downward: always succeeds, frees capacity.
                        total_granted += new_rate - old_granted;
                        c.granted = new_rate;
                        self.redistribute(&mut calls, &mut total_granted);
                    } else if new_rate > old_granted {
                        win_attempts += 1;
                        let headroom = (cfg.capacity - total_granted).max(0.0);
                        let grant = (new_rate - old_granted).min(headroom);
                        let c = &mut calls[call];
                        c.granted = old_granted + grant;
                        total_granted += grant;
                        if c.granted + 1e-9 < new_rate {
                            win_failures += 1;
                        }
                    }
                    reserved_tw.set(now, total_granted);
                    self.notify(controller, &calls, now, cfg.capacity);
                }
                Event::WindowEnd => {
                    reserved_tw.advance(now);
                    let mean_reserved =
                        (reserved_tw.integral() - reserved_integral_mark) / (now - win_start);
                    reserved_integral_mark = reserved_tw.integral();
                    win_start = now;
                    let failure_sample = if win_attempts > 0 {
                        win_failures as f64 / win_attempts as f64
                    } else {
                        0.0
                    };
                    let util_sample = mean_reserved / cfg.capacity;
                    win_attempts = 0;
                    win_failures = 0;
                    if windows_done >= cfg.warmup_windows {
                        failure_stats.push(failure_sample);
                        util_stats.push(util_sample);
                        let fd = failure_rule.evaluate(&failure_stats);
                        let ud = util_rule.evaluate(&util_stats);
                        if fd.should_stop() && ud.should_stop() {
                            decision = fd;
                            break;
                        }
                    }
                    windows_done += 1;
                    if windows_done >= cfg.max_windows + cfg.warmup_windows {
                        decision = StopDecision::BudgetExhausted;
                        break;
                    }
                    sched.schedule_in(window, Event::WindowEnd);
                }
            }
        }

        let end = sched.now();
        CallSimReport {
            failure_probability: failure_stats.mean(),
            utilization: util_stats.mean(),
            blocking_probability: if arrivals_total > 0 {
                blocked_total as f64 / arrivals_total as f64
            } else {
                0.0
            },
            mean_calls: calls_tw.average(end),
            windows: failure_stats.count(),
            decision,
        }
    }

    /// Hand freed capacity to calls still short of their demand, in call
    /// order (recovery is not counted as renegotiation attempts).
    fn redistribute(&self, calls: &mut [Call], total_granted: &mut f64) {
        let mut headroom = (self.config.capacity - *total_granted).max(0.0);
        if headroom <= 0.0 {
            return;
        }
        for c in calls.iter_mut() {
            if !c.alive || c.granted >= c.demanded {
                continue;
            }
            let need = c.demanded - c.granted;
            let take = need.min(headroom);
            c.granted += take;
            *total_granted += take;
            headroom -= take;
            if headroom <= 0.0 {
                break;
            }
        }
    }

    fn notify(
        &self,
        controller: &mut dyn AdmissionController,
        calls: &[Call],
        now: f64,
        capacity: f64,
    ) {
        let reservations: Vec<f64> = calls
            .iter()
            .filter(|c| c.alive)
            .map(|c| c.granted)
            .collect();
        controller.observe(&AdmissionSnapshot {
            capacity,
            time: now,
            reservations: &reservations,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controllers::{Memoryless, PeakRate, PerfectKnowledge};
    use proptest::prelude::*;

    /// A short schedule: 60 slots of 1 s, alternating 100 kb/s (45 s) and
    /// 500 kb/s (15 s) — mean 200 kb/s, peak 500 kb/s.
    fn base_schedule() -> Schedule {
        let mut rates = vec![100_000.0; 45];
        rates.extend(vec![500_000.0; 15]);
        Schedule::from_rates(1.0, &rates)
    }

    #[test]
    fn shifted_events_cover_all_boundaries() {
        let s = base_schedule();
        let sim = CallSim::new(&s, CallSimConfig::new(1e6, 0.1, 1e-3, 1));
        // Offset 0: initial 100k, events at t=45 (500k) and t=... wrap at 60
        // is the call end, boundary at slot 0 maps to local 0 (skipped).
        let (r0, ev0) = sim.shifted_events(0);
        assert_eq!(r0, 100_000.0);
        assert_eq!(ev0, vec![(45.0, 500_000.0)]);
        // Offset 50: starts inside the high period.
        let (r1, ev1) = sim.shifted_events(50);
        assert_eq!(r1, 500_000.0);
        // Events: back to 100k at local (0+60-50)%60=10, up at (45-50+60)%60=55.
        assert_eq!(ev1, vec![(10.0, 100_000.0), (55.0, 500_000.0)]);
    }

    #[test]
    fn peak_rate_controller_never_fails() {
        let s = base_schedule();
        let cfg = CallSimConfig::new(5_000_000.0, 0.2, 1e-3, 7).with_max_windows(20);
        let sim = CallSim::new(&s, cfg);
        let mut ctl = PeakRate::new(500_000.0);
        let report = sim.run(&mut ctl);
        assert_eq!(report.failure_probability, 0.0, "{report:?}");
        // Peak allocation caps utilization at mean/peak = 0.4 of capacity.
        assert!(report.utilization <= 0.45, "{report:?}");
        assert!(report.mean_calls > 0.0);
    }

    #[test]
    fn perfect_knowledge_respects_target_and_beats_peak_utilization() {
        let s = base_schedule();
        let dist = s.empirical_distribution();
        let target = 1e-2;
        let cfg = CallSimConfig::new(5_000_000.0, 0.5, target, 11).with_max_windows(60);
        let sim = CallSim::new(&s, cfg.clone());
        let mut pk = PerfectKnowledge::new(dist, target);
        let report_pk = sim.run(&mut pk);
        let mut peak = PeakRate::new(500_000.0);
        let report_peak = CallSim::new(&s, cfg).run(&mut peak);
        assert!(
            report_pk.utilization > report_peak.utilization,
            "statistical admission should beat peak allocation: {} vs {}",
            report_pk.utilization,
            report_peak.utilization
        );
        // Failures bounded near the target (sampling noise allowed).
        assert!(
            report_pk.failure_probability <= 10.0 * target,
            "failure probability {} far above target {target}",
            report_pk.failure_probability
        );
    }

    #[test]
    fn memoryless_overshoots_on_small_links() {
        // Small capacity (10x the call mean): the regime where Fig. 7 shows
        // the memoryless scheme misses the target by orders of magnitude.
        let s = base_schedule();
        let target = 1e-3;
        let capacity = 10.0 * 200_000.0;
        let cfg = CallSimConfig::new(capacity, 0.5, target, 13).with_max_windows(60);
        let sim = CallSim::new(&s, cfg);
        let mut ml = Memoryless::new(target);
        let report = sim.run(&mut ml);
        assert!(
            report.failure_probability > 10.0 * target,
            "expected gross QoS violation, got {}",
            report.failure_probability
        );
    }

    #[test]
    fn saturated_link_blocks_calls() {
        let s = base_schedule();
        // Tiny capacity and high load: the perfect controller must block.
        let dist = s.empirical_distribution();
        let cfg = CallSimConfig::new(600_000.0, 1.0, 1e-3, 17).with_max_windows(20);
        let sim = CallSim::new(&s, cfg);
        let mut pk = PerfectKnowledge::new(dist, 1e-3);
        let report = sim.run(&mut pk);
        assert!(report.blocking_probability > 0.5, "{report:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let s = base_schedule();
        let cfg = CallSimConfig::new(2_000_000.0, 0.3, 1e-3, 23).with_max_windows(10);
        let mut a = Memoryless::new(1e-3);
        let mut b = Memoryless::new(1e-3);
        let ra = CallSim::new(&s, cfg.clone()).run(&mut a);
        let rb = CallSim::new(&s, cfg).run(&mut b);
        assert_eq!(ra.failure_probability, rb.failure_probability);
        assert_eq!(ra.utilization, rb.utilization);
        assert_eq!(ra.blocking_probability, rb.blocking_probability);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The shifted-event expansion reproduces the base schedule: for
        /// any offset, walking the initial rate through the events must
        /// visit exactly the base schedule's rate trajectory.
        #[test]
        fn shifted_events_reproduce_the_rotation(
            raw in proptest::collection::vec(0u8..4, 4..60),
            offset in 0usize..200,
        ) {
            // Coarse levels so segments merge.
            let rates: Vec<f64> = raw.iter().map(|&r| 100.0 * (r as f64 + 1.0)).collect();
            let schedule = Schedule::from_rates(1.0, &rates);
            let sim = CallSim::new(&schedule, CallSimConfig::new(1e6, 0.1, 1e-3, 1));
            let n = rates.len();
            let offset = offset % n;
            let (initial, events) = sim.shifted_events(offset);
            // Expand back to a per-slot trajectory.
            let mut rebuilt = vec![initial; n];
            for &(time, rate) in &events {
                let slot = time as usize;
                prop_assert!(slot > 0 && slot < n, "event time {time} out of range");
                for r in rebuilt.iter_mut().skip(slot) {
                    *r = rate;
                }
            }
            for (t, r) in rebuilt.iter().enumerate() {
                prop_assert_eq!(*r, rates[(t + offset) % n], "slot {}", t);
            }
            // Event times strictly increase.
            for w in events.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn conservation_under_load() {
        // Drive the system hard and verify the report is sane.
        let s = base_schedule();
        let cfg = CallSimConfig::new(1_000_000.0, 2.0, 1e-2, 29).with_max_windows(15);
        let sim = CallSim::new(&s, cfg);
        let mut ml = Memoryless::new(1e-2);
        let report = sim.run(&mut ml);
        assert!(report.utilization <= 1.0 + 1e-9, "{report:?}");
        assert!(report.utilization >= 0.0);
        assert!((0.0..=1.0).contains(&report.failure_probability));
        assert!((0.0..=1.0).contains(&report.blocking_probability));
    }
}
