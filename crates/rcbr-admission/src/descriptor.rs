//! Traffic-descriptor utilities.
//!
//! The Section VI descriptor of a call is its empirical bandwidth
//! distribution (`Schedule::empirical_distribution` computes it). These
//! helpers reshape such distributions for the controllers: quantizing onto
//! a common rate grid (so measured levels from different calls aggregate)
//! and building distributions from observed level counts.

use rcbr_schedule::RateGrid;
use rcbr_sim::stats::DiscreteDistribution;

/// Project a distribution onto `grid` by moving each level's probability
/// to the smallest grid level that covers it (rates above the grid go to
/// the top level — a conservative rounding in the admission direction).
pub fn quantize_to_grid(dist: &DiscreteDistribution, grid: &RateGrid) -> DiscreteDistribution {
    let mut weights = vec![0.0; grid.len()];
    for (r, p) in dist.iter() {
        let idx = grid.ceil_index(r).unwrap_or(grid.len() - 1);
        weights[idx] += p;
    }
    let pairs: Vec<(f64, f64)> = grid.levels().iter().copied().zip(weights).collect();
    DiscreteDistribution::from_weights(&pairs)
}

/// Build a distribution from raw observed rate values (e.g. the snapshot
/// of current reservations), grouping exactly equal values.
///
/// Returns `None` when `values` is empty (no measurement available).
pub fn distribution_from_observations(values: &[f64]) -> Option<DiscreteDistribution> {
    if values.is_empty() {
        return None;
    }
    let mut acc: Vec<(f64, f64)> = Vec::new();
    for &v in values {
        match acc.iter_mut().find(|(r, _)| *r == v) {
            Some((_, w)) => *w += 1.0,
            None => acc.push((v, 1.0)),
        }
    }
    acc.sort_by(|a, b| a.0.total_cmp(&b.0));
    Some(DiscreteDistribution::from_weights(&acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_moves_mass_up() {
        let d = DiscreteDistribution::from_weights(&[(90.0, 0.5), (150.0, 0.5)]);
        let grid = RateGrid::new(vec![100.0, 200.0]);
        let q = quantize_to_grid(&d, &grid);
        assert_eq!(q.levels(), &[100.0, 200.0]);
        assert_eq!(q.probs(), &[0.5, 0.5]);
        assert!(q.mean() >= d.mean());
    }

    #[test]
    fn above_grid_clamps_to_top() {
        let d = DiscreteDistribution::from_weights(&[(500.0, 1.0)]);
        let grid = RateGrid::new(vec![100.0, 200.0]);
        let q = quantize_to_grid(&d, &grid);
        assert_eq!(q.probs(), &[0.0, 1.0]);
    }

    #[test]
    fn observations_group_equal_values() {
        let d = distribution_from_observations(&[100.0, 200.0, 100.0, 100.0]).unwrap();
        assert_eq!(d.levels(), &[100.0, 200.0]);
        assert_eq!(d.probs(), &[0.75, 0.25]);
        assert!(distribution_from_observations(&[]).is_none());
    }
}
