//! Core [`Strategy`] trait and the primitive strategies.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Full-type-range strategy; build with [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Generate any value of `T` (uniform over the type's bit patterns for
/// integers and `bool`; finite uniform for floats).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Symmetric heavy-ish spread without infinities/NaN: sign * exp scale.
        let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            mag
        } else {
            -mag
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}
