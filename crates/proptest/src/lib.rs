#![warn(missing_docs)]

//! # proptest (offline stand-in)
//!
//! The build container has no registry access, so the real `proptest`
//! crate cannot be fetched. This crate reimplements the macro surface the
//! workspace's property tests use:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }` with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * range strategies (`0u32..5`, `-1.0..1.0f64`), `any::<T>()`, tuples of
//!   strategies, and `proptest::collection::vec(strategy, len)`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Unlike the real proptest there is **no shrinking** and **no persistence
//! file**: inputs are generated from a deterministic per-case RNG
//! (SplitMix64 seeded by the case index), so a failure reproduces exactly
//! on re-run and the failing case index printed in the panic message is a
//! stable identifier.

/// Generation strategies.
pub mod strategy;

/// Collection strategies (`vec`).
pub mod collection;

pub use strategy::{any, Any, Strategy};

/// One-stop import for property tests, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, TestCaseError,
        TestCaseResult,
    };
}

/// Why a property-test case failed. Property bodies may `return
/// Err(TestCaseError::fail(..))` to reject the case with a message, as
/// with the real proptest.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self {
            message: reason.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// What a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property against `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 128 keeps the workspace's
        // many property tests fast while still exploring broadly.
        Self { cases: 128 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case number `case` of a property.
    pub fn for_case(case: u32) -> Self {
        // Fixed base so runs are reproducible; golden-ratio stride
        // decorrelates consecutive cases.
        Self {
            state: 0x9e3779b97f4a7c15u64.wrapping_mul(case as u64 + 1) ^ 0x5851f42d4c957f2d,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// The `proptest!` block: one or more property-test functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    let __run = || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    );
                    match __outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(__err)) => {
                            ::std::panic!(
                                "proptest case {} of {} failed for property `{}`: {}",
                                __case,
                                __config.cases,
                                ::std::stringify!($name),
                                __err,
                            );
                        }
                        ::std::result::Result::Err(__panic) => {
                            ::std::eprintln!(
                                "proptest case {} of {} failed for property `{}`",
                                __case,
                                __config.cases,
                                ::std::stringify!($name),
                            );
                            ::std::panic::resume_unwind(__panic);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a property; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Expands to an early `Ok` return from the case closure, so it must
/// appear at the top level of the property body (which is how the
/// workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case(3);
        let mut b = crate::TestRng::for_case(3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in -5.0..7.0f64,
            n in 1u32..10,
            i in 0usize..3,
            b in any::<bool>(),
        ) {
            prop_assert!((-5.0..7.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(i < 3);
            let _ = b;
        }

        #[test]
        fn vec_strategy_respects_length(
            xs in collection::vec(0.0..1.0f64, 1..20),
            fixed in collection::vec(any::<u8>(), 4),
            nested in collection::vec(collection::vec(0u32..5, 2), 3),
        ) {
            prop_assert!((1..20).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 4);
            prop_assert_eq!(nested.len(), 3);
            for inner in &nested {
                prop_assert_eq!(inner.len(), 2);
            }
        }

        #[test]
        fn tuples_and_assume(
            (a, b, c) in (0u32..5, -1.0..1.0f64, any::<bool>()),
        ) {
            prop_assume!(c);
            prop_assert!(a < 5);
            prop_assert!((-1.0..1.0).contains(&b));
        }
    }
}
