//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Something usable as a vector-length specification: a fixed `usize` or a
/// half-open `Range<usize>`.
pub trait IntoLenRange {
    /// Lower length bound (inclusive).
    fn lo(&self) -> usize;
    /// Upper length bound (exclusive).
    fn hi(&self) -> usize;
}

impl IntoLenRange for usize {
    fn lo(&self) -> usize {
        *self
    }
    fn hi(&self) -> usize {
        *self + 1
    }
}

impl IntoLenRange for Range<usize> {
    fn lo(&self) -> usize {
        self.start
    }
    fn hi(&self) -> usize {
        self.end
    }
}

/// Strategy generating `Vec`s of another strategy's values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

/// Vectors of `element` values with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
    let (lo, hi) = (len.lo(), len.hi());
    assert!(lo < hi, "empty length range");
    VecStrategy { element, lo, hi }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
