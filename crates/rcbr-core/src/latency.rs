//! Renegotiation-latency sensitivity — the paper's open question.
//!
//! Section III-C: "the performance of applications with online RCBR
//! decreases with an increase in latency because these applications must
//! predict their future data rate ... We do not yet have analytical
//! expressions or simulation results studying the effect of renegotiation
//! delay on RCBR performance." This module supplies those simulation
//! results:
//!
//! * [`online_with_latency`] — an online source whose requests take a
//!   round-trip `delay` to come into effect (at most one outstanding
//!   request, as with RM-cell signaling). As the paper predicts, loss and
//!   peak backlog grow with the delay, and the damage can be bought back
//!   with end-system buffer or with rate headroom.
//! * [`offline_with_latency`] — a stored-video source that *anticipates*:
//!   it issues each scheduled renegotiation `delay` early, so (again as
//!   the paper claims) offline sources are insensitive to path latency.

use rcbr_schedule::{OnlinePolicy, Schedule};
use rcbr_sim::FluidQueue;
use rcbr_traffic::FrameTrace;
use serde::{Deserialize, Serialize};

/// Outcome of a latency-sensitivity run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyOutcome {
    /// Signaling round-trip used, seconds.
    pub delay: f64,
    /// Fraction of bits lost at the end-system buffer.
    pub loss_fraction: f64,
    /// Largest backlog observed, bits.
    pub peak_backlog: f64,
    /// Trace mean rate / mean granted rate.
    pub bandwidth_efficiency: f64,
    /// Renegotiation requests issued.
    pub requests: u64,
}

/// Drive an online `policy` over `trace` with a compliant network whose
/// grants take `delay` seconds (rounded up to whole slots) to come into
/// effect. While a request is in flight the policy's further requests are
/// suppressed (one outstanding RM cell), and the in-flight grant is
/// confirmed to the policy only when it matures.
pub fn online_with_latency(
    trace: &FrameTrace,
    policy: &mut dyn OnlinePolicy,
    buffer: f64,
    delay: f64,
) -> LatencyOutcome {
    assert!(
        delay >= 0.0 && delay.is_finite(),
        "delay must be nonnegative"
    );
    let tau = trace.frame_interval();
    let delay_slots = (delay / tau).ceil() as usize;
    let mut queue = FluidQueue::new(buffer);
    let mut current = policy.current_rate();
    // (slot at which it matures, granted rate)
    let mut in_flight: Option<(usize, f64)> = None;
    let mut peak: f64 = 0.0;
    let mut requests = 0u64;
    let mut granted_sum = 0.0f64;

    for t in 0..trace.len() {
        if let Some((due, rate)) = in_flight {
            if t >= due {
                current = rate;
                policy.granted(rate);
                in_flight = None;
            }
        }
        granted_sum += current;
        let out = queue.offer(trace.bits(t), current * tau);
        peak = peak.max(out.backlog);
        let want = policy.observe_slot(trace.bits(t), out.backlog);
        if let Some(rate) = want {
            if in_flight.is_none() {
                requests += 1;
                in_flight = Some((t + 1 + delay_slots, rate));
            }
        }
    }

    let mean_granted = granted_sum / trace.len() as f64;
    LatencyOutcome {
        delay,
        loss_fraction: queue.loss_fraction(),
        peak_backlog: peak,
        bandwidth_efficiency: if mean_granted > 0.0 {
            trace.mean_rate() / mean_granted
        } else {
            f64::INFINITY
        },
        requests,
    }
}

/// Replay a stored-video `schedule` whose renegotiations are issued
/// `delay` seconds early (the offline anticipation of Section III-A2), so
/// each new rate is in effect exactly at its scheduled slot. Returns the
/// same outcome type for comparison; with a compliant network the result
/// is *independent of the delay* — the offline insensitivity claim.
pub fn offline_with_latency(
    trace: &FrameTrace,
    schedule: &Schedule,
    buffer: f64,
    delay: f64,
) -> LatencyOutcome {
    assert_eq!(
        schedule.num_slots(),
        trace.len(),
        "schedule must cover the trace"
    );
    assert!(
        delay >= 0.0 && delay.is_finite(),
        "delay must be nonnegative"
    );
    // Anticipation makes the granted-rate trajectory equal the scheduled
    // one; replay directly.
    let metrics = schedule.replay(trace, buffer);
    LatencyOutcome {
        delay,
        loss_fraction: metrics.loss_fraction,
        peak_backlog: metrics.peak_backlog,
        bandwidth_efficiency: metrics.bandwidth_efficiency,
        requests: schedule.num_renegotiations() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_schedule::{Ar1Config, Ar1Policy};
    use rcbr_sim::SimRng;
    use rcbr_traffic::SyntheticMpegSource;

    fn video(seed: u64, frames: usize) -> FrameTrace {
        let mut rng = SimRng::from_seed(seed);
        SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
    }

    fn policy(trace: &FrameTrace) -> Ar1Policy {
        let tau = trace.frame_interval();
        Ar1Policy::new(Ar1Config::fig2(64_000.0, trace.mean_rate(), tau), tau)
    }

    #[test]
    fn zero_delay_matches_run_online() {
        let trace = video(1, 4800);
        let mut p1 = policy(&trace);
        let with_latency = online_with_latency(&trace, &mut p1, 300_000.0, 0.0);
        // Zero delay still takes effect next slot (as run_online does);
        // the outcomes should agree closely.
        let mut p2 = policy(&trace);
        let base = rcbr_schedule::online::run_online(&trace, &mut p2, 300_000.0);
        assert!((with_latency.loss_fraction - base.loss_fraction).abs() < 5e-4);
    }

    #[test]
    fn performance_degrades_with_delay() {
        let trace = video(2, 9600);
        let buffer = 300_000.0;
        let mut outcomes = Vec::new();
        for delay in [0.0, 0.25, 1.0, 4.0] {
            let mut p = policy(&trace);
            outcomes.push(online_with_latency(&trace, &mut p, buffer, delay));
        }
        // Loss at 4 s RTT must be clearly worse than at 0 s.
        assert!(
            outcomes[3].loss_fraction > outcomes[0].loss_fraction,
            "4 s delay should lose more: {:?} vs {:?}",
            outcomes[3],
            outcomes[0]
        );
        // And requests fall (one outstanding at a time).
        assert!(outcomes[3].requests <= outcomes[0].requests);
    }

    #[test]
    fn buffer_buys_back_latency_damage() {
        let trace = video(3, 9600);
        let delay = 2.0;
        let mut p1 = policy(&trace);
        let small = online_with_latency(&trace, &mut p1, 300_000.0, delay);
        let mut p2 = policy(&trace);
        let big = online_with_latency(&trace, &mut p2, 3_000_000.0, delay);
        assert!(
            big.loss_fraction < small.loss_fraction || small.loss_fraction == 0.0,
            "10x buffer must not lose more: {big:?} vs {small:?}"
        );
    }

    #[test]
    fn offline_is_insensitive_to_delay() {
        let trace = video(4, 2400);
        let buffer = 300_000.0;
        let grid = rcbr_schedule::RateGrid::uniform(48_000.0, 2_400_000.0, 10);
        let schedule = rcbr_schedule::OfflineOptimizer::new(
            rcbr_schedule::TrellisConfig::new(
                grid,
                rcbr_schedule::CostModel::from_ratio(1e6),
                buffer,
            )
            .with_q_resolution(buffer / 500.0),
        )
        .optimize(&trace)
        .unwrap();
        let a = offline_with_latency(&trace, &schedule, buffer, 0.0);
        let b = offline_with_latency(&trace, &schedule, buffer, 5.0);
        assert_eq!(a.loss_fraction, b.loss_fraction);
        assert_eq!(a.peak_backlog, b.peak_backlog);
        assert_eq!(a.loss_fraction, 0.0);
    }
}
