#![warn(missing_docs)]

//! # rcbr — the renegotiated constant-bit-rate service
//!
//! This crate is the paper's primary contribution assembled from its
//! substrates: sources are presented with "an abstraction of a fixed-size
//! buffer which is drained at a constant rate", and they may renegotiate
//! the drain rate to match their workload.
//!
//! * [`source`] — the RCBR source endpoint: end-system buffer, granted
//!   rate, and either a precomputed (offline) schedule or a causal online
//!   policy driving renegotiations.
//! * [`service`] — a source connected through a multi-hop signaling path
//!   ([`rcbr_net`]), with optional signaling loss and periodic
//!   absolute-rate resync: the full Section III mechanism.
//! * [`scenario`] — the three multiplexing scenarios of Fig. 3: (a) static
//!   CBR with per-source smoothing buffers, (b) unrestricted sharing into
//!   one big buffer (the SMG upper bound), and (c) RCBR — per-source
//!   smoothing into stepwise-CBR streams multiplexed bufferlessly, where a
//!   failed upward renegotiation means the source "has to temporarily
//!   settle for whatever bandwidth remaining in the link".
//! * [`capacity`] — the Fig. 6 experiment driver: binary search for the
//!   per-stream capacity `c(N)` meeting a bit-loss target, with randomized
//!   phasing and the paper's replication stopping rule.
//! * [`sigma_rho`] — the Fig. 5 curve: minimum drain rate as a function of
//!   buffer size for a given loss tolerance.

pub mod adaptive;
pub mod capacity;
pub mod latency;
pub mod scenario;
pub mod service;
pub mod sigma_rho;
pub mod source;
pub mod system;

pub use adaptive::{AdaptiveConfig, AdaptiveSource};
pub use capacity::{search_capacity, CapacityPoint, SearchConfig};
pub use latency::{offline_with_latency, online_with_latency, LatencyOutcome};
pub use scenario::{
    scenario_a_loss, ScenarioBConfig, ScenarioCConfig, SharedBufferSim, StepwiseCbrMuxSim,
};
pub use service::{RcbrConnection, ServiceConfig};
pub use sigma_rho::{min_rate_for_buffer, sigma_rho_curve, SigmaRhoPoint};
pub use source::{RcbrSource, SourceEvent};
pub use system::{SystemConfig, SystemReport, SystemSim};
