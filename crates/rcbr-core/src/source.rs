//! The RCBR source endpoint.
//!
//! A source sees "an abstraction of a fixed-size buffer which is drained
//! at a constant rate" and renegotiates the drain rate to match its
//! workload. The endpoint couples that buffer with a renegotiation driver:
//!
//! * **offline** — a precomputed [`Schedule`] (stored video, Section
//!   IV-A): requests are issued at the schedule's segment boundaries;
//! * **online** — a causal [`OnlinePolicy`] (interactive video, Section
//!   IV-B): "an active component monitor[s] the buffer between the
//!   application and the network and initiate[s] renegotiations based on
//!   the buffer occupancy".
//!
//! The network's accept/deny decision is injected per step, so the
//! endpoint composes with anything from a closure in a test to the full
//! multi-hop [`crate::service::RcbrConnection`].

use rcbr_schedule::{OnlinePolicy, Schedule};
use rcbr_sim::FluidQueue;
use serde::{Deserialize, Serialize};

/// What happened during one slot at the endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceEvent {
    /// Rate in effect during the slot, bits/second.
    pub rate: f64,
    /// Backlog at the end of the slot, bits.
    pub backlog: f64,
    /// Bits lost to buffer overflow in the slot.
    pub lost: f64,
    /// The rate requested this slot, if any.
    pub requested: Option<f64>,
    /// Whether the request was granted (absent if nothing was requested).
    pub granted: Option<bool>,
}

enum Driver {
    Offline { schedule: Schedule, slot: usize },
    Online { policy: Box<dyn OnlinePolicy> },
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Driver::Offline { slot, .. } => write!(f, "Offline {{ slot: {slot} }}"),
            Driver::Online { .. } => write!(f, "Online"),
        }
    }
}

/// An RCBR source endpoint.
#[derive(Debug)]
pub struct RcbrSource {
    queue: FluidQueue,
    slot_duration: f64,
    current_rate: f64,
    driver: Driver,
    total_requests: u64,
    failed_requests: u64,
}

impl RcbrSource {
    /// A stored-video source following a precomputed schedule.
    ///
    /// # Panics
    /// Panics if `buffer < 0`.
    pub fn offline(schedule: Schedule, buffer: f64) -> Self {
        let slot_duration = schedule.slot_duration();
        let initial = schedule.rate_at(0);
        Self {
            queue: FluidQueue::new(buffer),
            slot_duration,
            current_rate: initial,
            driver: Driver::Offline { schedule, slot: 0 },
            total_requests: 0,
            failed_requests: 0,
        }
    }

    /// An interactive source driven by a causal policy.
    pub fn online(policy: Box<dyn OnlinePolicy>, slot_duration: f64, buffer: f64) -> Self {
        assert!(slot_duration > 0.0, "slot duration must be positive");
        let initial = policy.current_rate();
        Self {
            queue: FluidQueue::new(buffer),
            slot_duration,
            current_rate: initial,
            driver: Driver::Online { policy },
            total_requests: 0,
            failed_requests: 0,
        }
    }

    /// Rate currently granted, bits/second.
    pub fn current_rate(&self) -> f64 {
        self.current_rate
    }

    /// Current backlog, bits.
    pub fn backlog(&self) -> f64 {
        self.queue.backlog()
    }

    /// Fraction of offered bits lost so far.
    pub fn loss_fraction(&self) -> f64 {
        self.queue.loss_fraction()
    }

    /// Renegotiation requests issued so far.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Requests the network denied.
    pub fn failed_requests(&self) -> u64 {
        self.failed_requests
    }

    /// Advance one slot: `arrived_bits` enter the buffer, the buffer
    /// drains at the granted rate, and the driver may issue a request,
    /// decided by `network(current_rate, requested_rate) -> granted?`.
    ///
    /// On a denial the source keeps its current rate ("even if the
    /// renegotiation fails, the source can keep whatever bandwidth it
    /// already has").
    pub fn step(
        &mut self,
        arrived_bits: f64,
        network: impl FnOnce(f64, f64) -> bool,
    ) -> SourceEvent {
        let out = self
            .queue
            .offer(arrived_bits, self.current_rate * self.slot_duration);
        let request = match &mut self.driver {
            Driver::Offline { schedule, slot } => {
                // Anticipate the next slot's scheduled rate.
                let next = (*slot + 1).min(schedule.num_slots() - 1);
                let want = schedule.rate_at(next);
                *slot = (*slot + 1).min(schedule.num_slots() - 1);
                (want != self.current_rate).then_some(want)
            }
            Driver::Online { policy } => policy.observe_slot(arrived_bits, out.backlog),
        };
        let mut granted = None;
        if let Some(want) = request {
            self.total_requests += 1;
            let ok = network(self.current_rate, want);
            granted = Some(ok);
            if ok {
                self.current_rate = want;
                if let Driver::Online { policy } = &mut self.driver {
                    policy.granted(want);
                }
            } else {
                self.failed_requests += 1;
            }
        }
        SourceEvent {
            rate: self.current_rate,
            backlog: out.backlog,
            lost: out.lost,
            requested: request,
            granted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_schedule::{Ar1Config, Ar1Policy};

    #[test]
    fn offline_source_follows_schedule() {
        let sched = Schedule::from_rates(1.0, &[100.0, 100.0, 300.0, 300.0]);
        let mut src = RcbrSource::offline(sched, 1000.0);
        assert_eq!(src.current_rate(), 100.0);
        // Slot 0: next is still 100 -> no request.
        let e0 = src.step(50.0, |_, _| true);
        assert_eq!(e0.requested, None);
        // Slot 1: next is 300 -> requests and is granted.
        let e1 = src.step(50.0, |_, _| true);
        assert_eq!(e1.requested, Some(300.0));
        assert_eq!(e1.granted, Some(true));
        assert_eq!(src.current_rate(), 300.0);
        assert_eq!(src.total_requests(), 1);
        assert_eq!(src.failed_requests(), 0);
    }

    #[test]
    fn denial_keeps_old_rate_and_counts_failure() {
        let sched = Schedule::from_rates(1.0, &[100.0, 500.0, 500.0]);
        let mut src = RcbrSource::offline(sched, 1e6);
        let e = src.step(100.0, |_, _| false);
        assert_eq!(e.requested, Some(500.0));
        assert_eq!(e.granted, Some(false));
        assert_eq!(src.current_rate(), 100.0);
        assert_eq!(src.failed_requests(), 1);
        // Retry: the schedule still wants 500 next slot... the offline
        // driver re-requests while the scheduled rate differs.
        let e = src.step(100.0, |_, _| true);
        assert_eq!(e.requested, Some(500.0));
        assert_eq!(src.current_rate(), 500.0);
    }

    #[test]
    fn buffer_overflows_are_recorded() {
        let sched = Schedule::from_rates(1.0, &[10.0, 10.0]);
        let mut src = RcbrSource::offline(sched, 100.0);
        let e = src.step(500.0, |_, _| true);
        assert!(e.lost > 0.0);
        assert!(src.loss_fraction() > 0.0);
        assert_eq!(src.backlog(), 100.0);
    }

    #[test]
    fn online_source_renegotiates_via_policy() {
        let cfg = Ar1Config {
            ar_coefficient: 0.5,
            buffer_low: 10.0,
            buffer_high: 100.0,
            flush_time: 2.0,
            granularity: 100.0,
            initial_rate: 100.0,
        };
        let policy = Ar1Policy::new(cfg, 1.0);
        let mut src = RcbrSource::online(Box::new(policy), 1.0, 1e6);
        assert_eq!(src.current_rate(), 100.0);
        // Big burst: backlog exceeds B_h, the policy requests more.
        let e = src.step(5000.0, |_, want| {
            assert!(want > 100.0);
            true
        });
        assert!(e.requested.is_some());
        assert!(src.current_rate() > 100.0);
    }

    #[test]
    fn online_denial_leaves_policy_consistent() {
        let cfg = Ar1Config {
            ar_coefficient: 0.5,
            buffer_low: 10.0,
            buffer_high: 100.0,
            flush_time: 2.0,
            granularity: 100.0,
            initial_rate: 100.0,
        };
        let policy = Ar1Policy::new(cfg, 1.0);
        let mut src = RcbrSource::online(Box::new(policy), 1.0, 1e6);
        src.step(5000.0, |_, _| false);
        assert_eq!(src.current_rate(), 100.0);
        assert_eq!(src.failed_requests(), 1);
    }
}
