//! The whole service in one simulation: online sources, RM-style
//! renegotiation against a shared port, and measurement-based admission —
//! every layer of the paper composed, at frame granularity.
//!
//! The schedule-level engines ([`crate::scenario`], `rcbr-admission`'s
//! call simulator) are what the paper's figures use, because they are
//! fast. [`SystemSim`] is the cross-check: nothing is abstracted — each
//! source runs its own causal policy over its own buffer, every
//! renegotiation is a reservation attempt on the shared [`OutputPort`],
//! and arrivals are admitted by a pluggable [`AdmissionController`]
//! observing the port's real state.

use rcbr_admission::{AdmissionController, AdmissionSnapshot};
use rcbr_net::OutputPort;
use rcbr_schedule::{Ar1Config, Ar1Policy, OnlinePolicy};
use rcbr_sim::{FluidQueue, SimRng};
use rcbr_traffic::FrameTrace;
use serde::{Deserialize, Serialize};

/// Configuration of the system simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Shared link capacity, bits/second.
    pub capacity: f64,
    /// Per-source end-system buffer, bits.
    pub buffer: f64,
    /// Poisson source-arrival rate, sources/second.
    pub arrival_rate: f64,
    /// Lifetime of each source, seconds (it then departs and releases its
    /// reservation).
    pub hold_time: f64,
    /// AR(1) policy parameters applied to every source.
    pub policy: Ar1Config,
    /// RNG seed.
    pub seed: u64,
}

/// Aggregate results of a system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemReport {
    /// Sources offered / admitted / completed.
    pub offered: u64,
    /// Sources the controller admitted.
    pub admitted: u64,
    /// Renegotiation requests made against the port.
    pub requests: u64,
    /// Requests the port denied.
    pub denials: u64,
    /// Aggregate fraction of bits lost in source buffers.
    pub loss_fraction: f64,
    /// Time-average port utilization.
    pub utilization: f64,
}

struct LiveSource {
    policy: Ar1Policy,
    queue: FluidQueue,
    trace: FrameTrace,
    offset: usize,
    pos: usize,
    remaining_slots: usize,
    vci: u32,
}

/// The frame-granularity full-system simulator.
pub struct SystemSim<'a> {
    movie: &'a FrameTrace,
    config: SystemConfig,
}

impl<'a> SystemSim<'a> {
    /// Create a system over randomly phased copies of `movie`.
    ///
    /// # Panics
    /// Panics on nonpositive capacity, buffer, arrival rate, or hold time.
    pub fn new(movie: &'a FrameTrace, config: SystemConfig) -> Self {
        assert!(config.capacity > 0.0, "capacity must be positive");
        assert!(config.buffer > 0.0, "buffer must be positive");
        assert!(config.arrival_rate > 0.0, "arrival rate must be positive");
        assert!(config.hold_time > 0.0, "hold time must be positive");
        Self { movie, config }
    }

    /// Run for `duration` seconds under `controller`.
    pub fn run(&self, controller: &mut dyn AdmissionController, duration: f64) -> SystemReport {
        let cfg = &self.config;
        let tau = self.movie.frame_interval();
        let total_slots = (duration / tau).ceil() as usize;
        let hold_slots = (cfg.hold_time / tau).ceil().max(1.0) as usize;
        let mut rng = SimRng::from_seed(cfg.seed);

        let mut port = OutputPort::new(cfg.capacity);
        let mut sources: Vec<LiveSource> = Vec::new();
        let mut next_arrival = rng.exponential(cfg.arrival_rate);
        let mut next_vci = 1u32;

        let mut offered = 0u64;
        let mut admitted = 0u64;
        let mut requests = 0u64;
        let mut denials = 0u64;
        let mut arrived_bits = 0.0f64;
        let mut lost_bits = 0.0f64;
        let mut util_integral = 0.0f64;

        for slot in 0..total_slots {
            let now = slot as f64 * tau;
            // Source arrivals within this slot.
            while next_arrival <= now {
                next_arrival += rng.exponential(cfg.arrival_rate);
                offered += 1;
                let reservations: Vec<f64> = sources.iter().map(|s| port.vci_rate(s.vci)).collect();
                let snapshot = AdmissionSnapshot {
                    capacity: cfg.capacity,
                    time: now,
                    reservations: &reservations,
                };
                controller.observe(&snapshot);
                if !controller.admit(&snapshot) {
                    continue;
                }
                // The initial reservation must actually fit the port.
                let initial = cfg.policy.initial_rate;
                let vci = next_vci;
                next_vci += 1;
                if !port.try_reserve_delta(vci, initial) {
                    continue;
                }
                admitted += 1;
                sources.push(LiveSource {
                    policy: Ar1Policy::new(cfg.policy, tau),
                    queue: FluidQueue::new(cfg.buffer),
                    trace: self.movie.clone(),
                    offset: rng.index(self.movie.len()),
                    pos: 0,
                    remaining_slots: hold_slots,
                    vci,
                });
            }

            // Advance every live source one slot.
            for s in sources.iter_mut() {
                let bits = s.trace.bits_shifted(s.offset, s.pos % s.trace.len());
                s.pos += 1;
                s.remaining_slots -= 1;
                arrived_bits += bits;
                let rate = port.vci_rate(s.vci);
                let out = s.queue.offer(bits, rate * tau);
                lost_bits += out.lost;
                if let Some(want) = s.policy.observe_slot(bits, out.backlog) {
                    requests += 1;
                    let delta = want - rate;
                    if port.try_reserve_delta(s.vci, delta) {
                        s.policy.granted(want);
                    } else {
                        denials += 1;
                    }
                }
            }

            // Departures release reservations.
            sources.retain_mut(|s| {
                if s.remaining_slots == 0 {
                    port.release(s.vci);
                    false
                } else {
                    true
                }
            });

            util_integral += port.utilization() * tau;
        }

        SystemReport {
            offered,
            admitted,
            requests,
            denials,
            loss_fraction: if arrived_bits > 0.0 {
                lost_bits / arrived_bits
            } else {
                0.0
            },
            utilization: util_integral / (total_slots as f64 * tau),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_admission::{Memoryless, PeakRate};
    use rcbr_traffic::SyntheticMpegSource;

    fn movie() -> FrameTrace {
        let mut rng = SimRng::from_seed(50);
        SyntheticMpegSource::star_wars_like().generate(4800, &mut rng)
    }

    fn config(movie: &FrameTrace, capacity: f64, seed: u64) -> SystemConfig {
        let tau = movie.frame_interval();
        SystemConfig {
            capacity,
            buffer: 300_000.0,
            arrival_rate: 0.2,
            hold_time: 60.0,
            policy: Ar1Config::fig2(64_000.0, movie.mean_rate(), tau),
            seed,
        }
    }

    #[test]
    fn uncongested_system_is_nearly_lossless() {
        let m = movie();
        let cfg = config(&m, 200.0 * m.mean_rate(), 1);
        let sim = SystemSim::new(&m, cfg);
        let mut ctl = Memoryless::new(1e-3);
        let report = sim.run(&mut ctl, 300.0);
        assert!(report.admitted > 10, "{report:?}");
        assert_eq!(report.denials, 0, "{report:?}");
        assert!(report.loss_fraction < 1e-3, "{report:?}");
        assert!(report.utilization > 0.0 && report.utilization < 0.5);
    }

    #[test]
    fn congested_system_denies_and_loses() {
        let m = movie();
        // Capacity for ~4 mean-rate sources, offered ~12 concurrently.
        let cfg = SystemConfig {
            arrival_rate: 0.2,
            ..config(&m, 4.0 * m.mean_rate(), 2)
        };
        let sim = SystemSim::new(&m, cfg);
        // Admit-everything controller: stress the port itself.
        struct AdmitAll;
        impl AdmissionController for AdmitAll {
            fn admit(&mut self, _s: &AdmissionSnapshot<'_>) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "admit-all"
            }
        }
        let report = sim.run(&mut AdmitAll, 300.0);
        assert!(report.denials > 0, "{report:?}");
        assert!(report.loss_fraction > 1e-3, "{report:?}");
        // The port never over-commits even under stress.
        assert!(report.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn peak_rate_admission_protects_the_system() {
        let m = movie();
        let capacity = 8.0 * m.peak_rate();
        let cfg = SystemConfig {
            arrival_rate: 0.5,
            ..config(&m, capacity, 3)
        };
        let sim = SystemSim::new(&m, cfg);
        let mut ctl = PeakRate::new(m.peak_rate());
        let report = sim.run(&mut ctl, 240.0);
        // Peak-rate admission leaves so much headroom that renegotiation
        // denials are essentially impossible.
        assert!(report.admitted > 0);
        assert!(
            (report.denials as f64) < 0.01 * report.requests.max(1) as f64,
            "{report:?}"
        );
        assert!(report.loss_fraction < 2e-3, "{report:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = movie();
        let cfg = config(&m, 20.0 * m.mean_rate(), 4);
        let mut a = Memoryless::new(1e-3);
        let mut b = Memoryless::new(1e-3);
        let ra = SystemSim::new(&m, cfg.clone()).run(&mut a, 120.0);
        let rb = SystemSim::new(&m, cfg).run(&mut b, 120.0);
        assert_eq!(ra.loss_fraction, rb.loss_fraction);
        assert_eq!(ra.requests, rb.requests);
        assert_eq!(ra.admitted, rb.admitted);
    }
}
