//! The (σ, ρ) curve of a trace — Fig. 5.
//!
//! "For a given buffer size, this curve gives the minimum service rate
//! such that the fraction of bits lost is less than 10⁻⁶." The curve
//! quantifies the paper's central complaint about non-renegotiated
//! service: to run near the mean rate, a multiple-time-scale trace needs
//! enormous buffers (≈ 100 Mb for the *Star Wars* trace at 1.05x the
//! mean), while a codec-scale 300 kb buffer forces a drain rate of ≈ 4x
//! the mean.

use rcbr_sim::FluidQueue;
use rcbr_traffic::FrameTrace;
use serde::{Deserialize, Serialize};

/// One point of the curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmaRhoPoint {
    /// Buffer size, bits.
    pub sigma: f64,
    /// Minimum drain rate meeting the loss target, bits/second.
    pub rho: f64,
}

/// Fraction of bits lost when `trace` flows through a `buffer`-bit queue
/// drained at `rate`, measured in *steady state*: the trace is played
/// twice (the experiments elsewhere treat traces as circular, randomly
/// phased streams), the first pass warms the queue up, and losses are
/// counted on the second pass. If the backlog still grows from pass to
/// pass the queue is unstable (`rate` below the sustainable rate) and the
/// per-pass growth is counted as lost too — so a sub-mean rate can never
/// masquerade as lossless behind a huge buffer.
pub fn loss_fraction(trace: &FrameTrace, buffer: f64, rate: f64) -> f64 {
    let tau = trace.frame_interval();
    let service = rate * tau;
    let mut q = FluidQueue::new(buffer);
    for t in 0..trace.len() {
        q.offer(trace.bits(t), service);
    }
    let q1 = q.backlog();
    let lost_pass1 = q.total_lost();
    let arrived_pass1 = q.total_arrived();
    for t in 0..trace.len() {
        q.offer(trace.bits(t), service);
    }
    let q2 = q.backlog();
    let lost = q.total_lost() - lost_pass1;
    let arrived = q.total_arrived() - arrived_pass1;
    if arrived <= 0.0 {
        return 0.0;
    }
    // Backlog growth across the measured pass is work that will never be
    // delivered in steady state.
    (lost + (q2 - q1).max(0.0)) / arrived
}

/// Minimum drain rate such that the loss fraction is at most `epsilon`,
/// found by bisection between the trace's mean and peak rates.
///
/// ```
/// use rcbr::min_rate_for_buffer;
/// use rcbr_traffic::FrameTrace;
///
/// let bits: Vec<f64> = (0..600)
///     .map(|i| if i % 60 < 10 { 1000.0 } else { 100.0 })
///     .collect();
/// let trace = FrameTrace::new(1.0, bits);
/// // A bufferless service needs ~the peak; a big buffer approaches the mean.
/// let tight = min_rate_for_buffer(&trace, 0.0, 1e-6);
/// let roomy = min_rate_for_buffer(&trace, 50_000.0, 1e-6);
/// assert!(tight > 2.0 * roomy);
/// ```
///
/// # Panics
/// Panics unless `0 <= epsilon < 1`.
pub fn min_rate_for_buffer(trace: &FrameTrace, buffer: f64, epsilon: f64) -> f64 {
    assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0, 1)");
    let peak = trace.peak_rate();
    // Loss at the peak rate is 0 (every slot is fully drained); at rate 0
    // it is ~1. Loss is nonincreasing in the rate, so bisect.
    let mut lo = 0.0;
    let mut hi = peak;
    if loss_fraction(trace, buffer, lo) <= epsilon {
        return lo;
    }
    // Relative tolerance on the rate.
    let tol = 1e-6 * peak;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if loss_fraction(trace, buffer, mid) <= epsilon {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// The full curve over the given buffer sizes.
pub fn sigma_rho_curve(trace: &FrameTrace, sigmas: &[f64], epsilon: f64) -> Vec<SigmaRhoPoint> {
    sigmas
        .iter()
        .map(|&sigma| SigmaRhoPoint {
            sigma,
            rho: min_rate_for_buffer(trace, sigma, epsilon),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_sim::SimRng;
    use rcbr_traffic::SyntheticMpegSource;

    fn bursty_trace() -> FrameTrace {
        // 100 b/s background with periodic 10-slot bursts at 1000 b/s.
        let bits: Vec<f64> = (0..600)
            .map(|i| if i % 60 < 10 { 1000.0 } else { 100.0 })
            .collect();
        FrameTrace::new(1.0, bits)
    }

    #[test]
    fn zero_loss_at_peak_rate() {
        let tr = bursty_trace();
        assert_eq!(loss_fraction(&tr, 0.0, tr.peak_rate()), 0.0);
    }

    #[test]
    fn min_rate_is_tight() {
        let tr = bursty_trace();
        let eps = 1e-6;
        let rho = min_rate_for_buffer(&tr, 500.0, eps);
        assert!(loss_fraction(&tr, 500.0, rho) <= eps);
        assert!(loss_fraction(&tr, 500.0, rho * 0.98) > eps, "rho not tight");
    }

    #[test]
    fn curve_is_nonincreasing_in_buffer() {
        let tr = bursty_trace();
        let pts = sigma_rho_curve(&tr, &[0.0, 100.0, 1000.0, 10_000.0, 1e9], 1e-6);
        for w in pts.windows(2) {
            assert!(
                w[1].rho <= w[0].rho + 1e-6,
                "rho must not increase with buffer: {w:?}"
            );
        }
        // Tiny buffer: near the peak. Huge buffer: near the mean.
        assert!(pts[0].rho > 0.9 * tr.peak_rate());
        assert!(pts.last().unwrap().rho <= 1.02 * tr.mean_rate());
    }

    #[test]
    fn zero_tolerance_with_huge_buffer_is_mean_rate() {
        let tr = bursty_trace();
        // With an infinite-like buffer and eps=0, the constraint is that
        // the queue drains by the end: rate >= total/duration.
        let rho = min_rate_for_buffer(&tr, 1e12, 0.0);
        assert!(
            rho <= tr.mean_rate() * 1.01,
            "rho {rho} vs mean {}",
            tr.mean_rate()
        );
    }

    #[test]
    fn video_trace_shape_matches_paper() {
        // The paper's headline: at the codec buffer (300 kb) the required
        // rate is ~4x the mean; at a rate 5% above the mean the buffer
        // needed is tens of Mb.
        let mut rng = SimRng::from_seed(1);
        let tr = SyntheticMpegSource::star_wars_like().generate(120_000, &mut rng);
        let eps = 1e-6;
        let rho_codec = min_rate_for_buffer(&tr, 300_000.0, eps);
        let ratio = rho_codec / tr.mean_rate();
        assert!(
            (2.0..8.0).contains(&ratio),
            "codec-buffer rate should be a few times the mean, got {ratio}"
        );
        // Find the buffer needed near the mean rate by scanning.
        let rate = 1.05 * tr.mean_rate();
        let mut needed = None;
        for &sigma in &[1e6, 1e7, 3e7, 1e8, 3e8, 1e9] {
            if loss_fraction(&tr, sigma, rate) <= eps {
                needed = Some(sigma);
                break;
            }
        }
        let needed = needed.expect("some buffer suffices");
        assert!(
            needed >= 1e6,
            "near-mean operation must need orders of magnitude more buffer, got {needed}"
        );
    }
}
