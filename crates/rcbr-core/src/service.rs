//! The full Section III service: a source endpoint signaling through a
//! multi-hop ATM path.
//!
//! [`RcbrConnection`] couples the endpoint-facing renegotiation API with
//! the [`rcbr_net`] substrate: delta-encoded RM cells along the path, a
//! deterministic [`FaultPlane`] deciding each request cell's fate (loss
//! causes the parameter drift of the paper's footnote 2), and periodic
//! absolute-rate resync that repairs it.
//!
//! Signaling here is optimistic one-way, as in ABR-style RM-cell usage:
//! the source applies its new rate after emitting the request cell, so a
//! lost cell leaves switches believing an older rate until the next
//! resync. This is exactly the failure mode the resync mechanism exists
//! for, and the integration tests demonstrate both the drift and the
//! repair.

use rcbr_net::{FaultAction, FaultPlane, Path, Switch};
use serde::{Deserialize, Serialize};

/// Connection-level configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Send an absolute-rate resync every this many renegotiations
    /// (`0` disables resync).
    pub resync_every: u64,
}

impl ServiceConfig {
    /// Resync every `n` renegotiations.
    pub fn new(resync_every: u64) -> Self {
        Self { resync_every }
    }
}

/// Errors surfaced by the connection API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The underlying switch rejected an operation structurally (unknown
    /// VCI/port), which indicates a wiring bug, not congestion.
    Switch(rcbr_net::SwitchError),
    /// Call setup was blocked at a hop by insufficient capacity.
    SetupBlocked {
        /// Index of the blocking hop.
        hop: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Switch(e) => write!(f, "switch error: {e}"),
            ServiceError::SetupBlocked { hop } => write!(f, "setup blocked at hop {hop}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<rcbr_net::SwitchError> for ServiceError {
    fn from(e: rcbr_net::SwitchError) -> Self {
        ServiceError::Switch(e)
    }
}

/// A live RCBR connection.
#[derive(Debug)]
pub struct RcbrConnection {
    vci: u32,
    path: Path,
    config: ServiceConfig,
    /// The rate the *source* believes it holds.
    believed_rate: f64,
    renegotiations: u64,
    resyncs: u64,
    lost_cells: u64,
    pressured_responses: u64,
}

impl RcbrConnection {
    /// Establish a connection at `initial_rate` along `path` (reserving on
    /// output port 0 of each hop's switch).
    pub fn establish(
        switches: &mut [Switch],
        path: Path,
        vci: u32,
        initial_rate: f64,
    ) -> Result<Self, ServiceError> {
        match path.setup(switches, vci, 0, initial_rate)? {
            Ok(()) => Ok(Self {
                vci,
                path,
                config: ServiceConfig::new(0),
                believed_rate: initial_rate,
                renegotiations: 0,
                resyncs: 0,
                lost_cells: 0,
                pressured_responses: 0,
            }),
            Err(hop) => Err(ServiceError::SetupBlocked { hop }),
        }
    }

    /// Set the resync policy.
    pub fn with_config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// The VCI.
    pub fn vci(&self) -> u32 {
        self.vci
    }

    /// The rate the source believes it holds, bits/second.
    pub fn believed_rate(&self) -> f64 {
        self.believed_rate
    }

    /// Resyncs sent so far.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Request cells lost in transit so far (dropped outright, or
    /// corrupted and discarded by the checksum).
    pub fn lost_cells(&self) -> u64 {
        self.lost_cells
    }

    /// Responses that came back carrying a hop's overload-pressure flag —
    /// the connection-level view of the signaling plane's shedding (see
    /// `rcbr_net::signaling`): a pressured response tells the source to
    /// widen its renegotiation cadence until one comes back clean.
    pub fn pressured_responses(&self) -> u64 {
        self.pressured_responses
    }

    /// Renegotiate to `new_rate`, optimistically. The request cell's fate
    /// is decided by `plane` (drift on loss or duplication); periodic
    /// resync repairs switch state.
    ///
    /// Returns `true` if the source now believes it holds `new_rate` —
    /// which, with optimistic signaling, is the case unless a delivered
    /// request was *denied* by a hop.
    pub fn renegotiate(
        &mut self,
        switches: &mut [Switch],
        plane: &FaultPlane,
        new_rate: f64,
    ) -> Result<bool, ServiceError> {
        assert!(
            new_rate >= 0.0 && new_rate.is_finite(),
            "rate must be nonnegative"
        );
        let delta = new_rate - self.believed_rate;
        let seq = self.renegotiations;
        self.renegotiations += 1;
        let mut ok = true;
        match plane.decide(seq, 0, 0) {
            FaultAction::Drop | FaultAction::Corrupt => {
                // Cell lost in transit (a corrupted cell is caught by the
                // checksum and discarded — same fate): the source, having
                // heard no denial, proceeds at the new rate while switches
                // lag — drift.
                self.lost_cells += 1;
                self.believed_rate = new_rate;
            }
            FaultAction::Deliver | FaultAction::Delay(_) => {
                // This synchronous API has no clock, so a delayed cell is
                // just a delivered one.
                let outcome = self.path.renegotiate(switches, self.vci, delta)?;
                ok = outcome.granted;
                self.pressured_responses += u64::from(outcome.pressured);
                if ok {
                    self.believed_rate = new_rate;
                }
            }
            FaultAction::Duplicate => {
                let outcome = self.path.renegotiate(switches, self.vci, delta)?;
                ok = outcome.granted;
                self.pressured_responses += u64::from(outcome.pressured);
                if ok {
                    self.believed_rate = new_rate;
                    // The duplicate applies the delta a second time where
                    // it fits — over-reservation drift the next resync
                    // returns to the pool.
                    let _ = self.path.renegotiate(switches, self.vci, delta)?;
                }
            }
        }
        if self.config.resync_every > 0
            && self.renegotiations.is_multiple_of(self.config.resync_every)
        {
            self.resync(switches)?;
        }
        Ok(ok)
    }

    /// Send an absolute-rate resync now.
    pub fn resync(&mut self, switches: &mut [Switch]) -> Result<bool, ServiceError> {
        self.resyncs += 1;
        Ok(self.path.resync(switches, self.vci, self.believed_rate)?)
    }

    /// Largest disagreement between the source's believed rate and any
    /// hop's reservation, bits/second (0 when fully synchronized).
    pub fn drift(&self, switches: &[Switch]) -> f64 {
        self.path
            .hops()
            .iter()
            .map(|&h| (switches[h].vci_rate(self.vci).unwrap_or(0.0) - self.believed_rate).abs())
            .fold(0.0f64, f64::max)
    }

    /// Tear the connection down.
    pub fn teardown(self, switches: &mut [Switch]) -> Result<(), ServiceError> {
        self.path.teardown(switches, self.vci)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_net::FaultConfig;
    use rcbr_sim::SimRng;

    fn network() -> Vec<Switch> {
        (0..3).map(|_| Switch::new(&[1_000_000.0])).collect()
    }

    fn path() -> Path {
        Path::new(vec![0, 1, 2], 0.001)
    }

    #[test]
    fn lossless_signaling_stays_synchronized() {
        let mut sw = network();
        let mut conn = RcbrConnection::establish(&mut sw, path(), 1, 100_000.0).unwrap();
        let plane = FaultPlane::transparent();
        for rate in [200_000.0, 150_000.0, 400_000.0] {
            assert!(conn.renegotiate(&mut sw, &plane, rate).unwrap());
            assert_eq!(conn.drift(&sw), 0.0);
        }
        assert_eq!(conn.lost_cells(), 0);
        assert_eq!(conn.believed_rate(), 400_000.0);
        conn.teardown(&mut sw).unwrap();
        assert_eq!(sw[0].port(0).unwrap().reserved(), 0.0);
    }

    #[test]
    fn setup_blocking_is_reported() {
        let mut sw = network();
        sw[1].setup(99, 0, 950_000.0).unwrap();
        match RcbrConnection::establish(&mut sw, path(), 1, 100_000.0) {
            Err(ServiceError::SetupBlocked { hop }) => assert_eq!(hop, 1),
            other => panic!("expected blocked setup, got {other:?}"),
        }
    }

    #[test]
    fn lost_cells_cause_drift_and_resync_repairs_it() {
        let mut sw = network();
        let mut conn = RcbrConnection::establish(&mut sw, path(), 1, 100_000.0)
            .unwrap()
            .with_config(ServiceConfig::new(0));
        // A plane that drops everything.
        let plane = FaultPlane::new(FaultConfig::drop_only(1.0, 1));
        conn.renegotiate(&mut sw, &plane, 300_000.0).unwrap();
        assert_eq!(conn.believed_rate(), 300_000.0);
        assert_eq!(conn.lost_cells(), 1);
        assert_eq!(conn.drift(&sw), 200_000.0);
        // Manual resync repairs every hop.
        assert!(conn.resync(&mut sw).unwrap());
        assert_eq!(conn.drift(&sw), 0.0);
    }

    #[test]
    fn periodic_resync_bounds_drift() {
        let mut sw = network();
        let mut conn = RcbrConnection::establish(&mut sw, path(), 1, 100_000.0)
            .unwrap()
            .with_config(ServiceConfig::new(4));
        let plane = FaultPlane::new(FaultConfig::drop_only(0.3, 7));
        let mut rng = SimRng::from_seed(8);
        for _ in 0..40 {
            let rate = 100_000.0 + rng.uniform_in(0.0, 400_000.0);
            conn.renegotiate(&mut sw, &plane, rate).unwrap();
        }
        // After the last resync multiple of 4, drift is zero.
        assert!(conn.resyncs() >= 10);
        assert!(conn.lost_cells() > 0, "a 30% drop plane never fired");
        assert!(conn.renegotiate(&mut sw, &plane, 250_000.0).is_ok());
        conn.resync(&mut sw).unwrap();
        assert_eq!(conn.drift(&sw), 0.0);
    }

    #[test]
    fn denied_renegotiation_returns_false() {
        let mut sw = network();
        sw[2].setup(50, 0, 800_000.0).unwrap();
        let mut conn = RcbrConnection::establish(&mut sw, path(), 1, 100_000.0).unwrap();
        let plane = FaultPlane::transparent();
        let ok = conn.renegotiate(&mut sw, &plane, 500_000.0).unwrap();
        assert!(!ok);
        // Denied with delivered signaling: the source keeps its old rate
        // and no drift exists.
        assert_eq!(conn.believed_rate(), 100_000.0);
        assert_eq!(conn.drift(&sw), 0.0);
    }
}
