//! The three multiplexing scenarios of Fig. 3.
//!
//! All three serve `N` randomly-shifted copies of the same trace with a
//! total service rate `N·c` and total buffering `N·B`:
//!
//! * **(a) static CBR** — each source has its own `B`-bit buffer and a
//!   fixed rate `c`; no multiplexing at all. The required `c` is the
//!   (σ, ρ) curve value at `σ = B` (see [`crate::sigma_rho`]), independent
//!   of `N`; [`scenario_a_loss`] evaluates the loss directly.
//! * **(b) unrestricted sharing** — all sources feed one `N·B`-bit buffer
//!   drained at `N·c`: the maximum achievable statistical multiplexing
//!   gain ([`SharedBufferSim`]).
//! * **(c) RCBR** — each source is smoothed by its own `B`-bit buffer into
//!   a stepwise-CBR stream (a precomputed offline renegotiation schedule),
//!   and the stepwise streams are multiplexed *bufferlessly* on the link
//!   ([`StepwiseCbrMuxSim`]). A failed upward renegotiation makes the
//!   source "temporarily settle for whatever bandwidth remaining in the
//!   link until more bandwidth becomes available"; bits are lost when the
//!   resulting deficit overflows the source's buffer.

use rcbr_schedule::Schedule;
use rcbr_sim::{FluidQueue, SimRng};
use rcbr_traffic::FrameTrace;
use serde::{Deserialize, Serialize};

pub use crate::sigma_rho::loss_fraction as scenario_a_loss;

/// Configuration of scenario (b).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioBConfig {
    /// Number of multiplexed sources `N`.
    pub num_sources: usize,
    /// Per-source buffer `B`, bits (the shared buffer is `N·B`).
    pub buffer_per_source: f64,
}

/// Scenario (b): unrestricted sharing into one big buffer.
#[derive(Debug, Clone)]
pub struct SharedBufferSim<'a> {
    trace: &'a FrameTrace,
    config: ScenarioBConfig,
}

impl<'a> SharedBufferSim<'a> {
    /// Create the simulator.
    ///
    /// # Panics
    /// Panics if `num_sources == 0` or the buffer is negative.
    pub fn new(trace: &'a FrameTrace, config: ScenarioBConfig) -> Self {
        assert!(config.num_sources > 0, "need at least one source");
        assert!(
            config.buffer_per_source >= 0.0,
            "buffer must be nonnegative"
        );
        Self { trace, config }
    }

    /// Fraction of bits lost with the given per-source rate and explicit
    /// phase offsets (one per source, in slots).
    pub fn loss_fraction(&self, rate_per_source: f64, offsets: &[usize]) -> f64 {
        assert_eq!(
            offsets.len(),
            self.config.num_sources,
            "one offset per source"
        );
        let n = self.config.num_sources;
        let t_len = self.trace.len();
        let tau = self.trace.frame_interval();
        let service = rate_per_source * n as f64 * tau;
        let mut queue = FluidQueue::new(self.config.buffer_per_source * n as f64);
        for t in 0..t_len {
            let arrivals: f64 = offsets
                .iter()
                .map(|&o| self.trace.bits((t + o) % t_len))
                .sum();
            queue.offer(arrivals, service);
        }
        queue.loss_fraction()
    }

    /// One replication with uniformly random phasing.
    pub fn loss_with_random_phasing(&self, rate_per_source: f64, rng: &mut SimRng) -> f64 {
        let offsets: Vec<usize> = (0..self.config.num_sources)
            .map(|_| rng.index(self.trace.len()))
            .collect();
        self.loss_fraction(rate_per_source, &offsets)
    }
}

/// Configuration of scenario (c).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioCConfig {
    /// Number of multiplexed sources `N`.
    pub num_sources: usize,
    /// Per-source smoothing buffer `B`, bits.
    pub buffer_per_source: f64,
}

/// What one scenario (c) replication observed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCOutcome {
    /// Fraction of offered bits lost to per-source buffer overflow.
    pub loss_fraction: f64,
    /// Upward renegotiation attempts (including each source's initial
    /// allocation).
    pub attempts: u64,
    /// Attempts that could not be granted in full.
    pub failures: u64,
}

impl ScenarioCOutcome {
    /// Failures / attempts (0 when there were no attempts).
    pub fn failure_probability(&self) -> f64 {
        if self.attempts > 0 {
            self.failures as f64 / self.attempts as f64
        } else {
            0.0
        }
    }
}

/// Scenario (c): stepwise-CBR streams multiplexed bufferlessly.
///
/// Each source's data path is simulated at frame granularity (arrivals
/// into its `B`-bit buffer, drained at its *granted* rate); the link
/// carries only the granted CBR rates, with no shared buffering.
#[derive(Debug, Clone)]
pub struct StepwiseCbrMuxSim<'a> {
    trace: &'a FrameTrace,
    /// Per-slot scheduled (demanded) rate of the base schedule.
    sched_rates: Vec<f64>,
    /// Per-slot backlog of the base (trace, schedule) pair when every
    /// request is granted — the steady-state trajectory a shifted replica
    /// starts on.
    base_backlog: Vec<f64>,
    config: ScenarioCConfig,
}

impl<'a> StepwiseCbrMuxSim<'a> {
    /// Create the simulator from the base trace and its offline schedule.
    ///
    /// A shifted replica is modeled as having run forever, so it starts at
    /// the base trajectory's backlog for its phase. For that trajectory to
    /// be circularly consistent the schedule should end with an empty
    /// buffer (`TrellisConfig::with_drain_at_end`); otherwise the residual
    /// backlog spills over every replica's wrap-around point and shows up
    /// as spurious loss.
    ///
    /// # Panics
    /// Panics if the schedule does not cover the trace or the config is
    /// degenerate.
    pub fn new(trace: &'a FrameTrace, schedule: &Schedule, config: ScenarioCConfig) -> Self {
        assert_eq!(
            schedule.num_slots(),
            trace.len(),
            "schedule must cover the trace"
        );
        assert!(config.num_sources > 0, "need at least one source");
        assert!(
            config.buffer_per_source >= 0.0,
            "buffer must be nonnegative"
        );
        let sched_rates = schedule.to_rates();
        let tau = trace.frame_interval();
        let buffer = config.buffer_per_source;
        let mut base_backlog = Vec::with_capacity(trace.len());
        let mut q: f64 = 0.0;
        for (t, &r) in sched_rates.iter().enumerate() {
            q = (q + trace.bits(t) - r * tau).max(0.0).min(buffer);
            base_backlog.push(q);
        }
        Self {
            trace,
            sched_rates,
            base_backlog,
            config,
        }
    }

    /// Run one replication with explicit phase offsets.
    pub fn run(&self, rate_per_source: f64, offsets: &[usize]) -> ScenarioCOutcome {
        let n = self.config.num_sources;
        assert_eq!(offsets.len(), n, "one offset per source");
        let t_len = self.trace.len();
        let tau = self.trace.frame_interval();
        let capacity = rate_per_source * n as f64;
        let buffer = self.config.buffer_per_source;

        let mut granted = vec![0.0f64; n];
        let mut demanded = vec![0.0f64; n];
        // Start each replica on the base trajectory for its phase: the
        // backlog at the end of the slot *before* its first one.
        let mut backlog: Vec<f64> = offsets
            .iter()
            .map(|&o| self.base_backlog[(o + t_len - 1) % t_len])
            .collect();
        let mut total_granted = 0.0f64;

        let mut attempts = 0u64;
        let mut failures = 0u64;
        let mut arrived = 0.0f64;
        let mut lost = 0.0f64;

        for t in 0..t_len {
            // Phase 1: downward steps release bandwidth first, so that
            // same-slot upward steps can use it.
            for i in 0..n {
                let d = self.sched_rates[(t + offsets[i]) % t_len];
                if d < demanded[i] {
                    demanded[i] = d;
                    if granted[i] > d {
                        total_granted -= granted[i] - d;
                        granted[i] = d;
                    }
                }
            }
            // Phase 2: upward steps (and initial allocations) try to grab
            // bandwidth; shortfalls are renegotiation failures.
            for i in 0..n {
                let d = self.sched_rates[(t + offsets[i]) % t_len];
                if d > demanded[i] || t == 0 {
                    demanded[i] = d;
                    if granted[i] >= d {
                        continue;
                    }
                    attempts += 1;
                    let headroom = (capacity - total_granted).max(0.0);
                    let grant = (d - granted[i]).min(headroom);
                    granted[i] += grant;
                    total_granted += grant;
                    if granted[i] + 1e-9 < d {
                        failures += 1;
                    }
                }
            }
            // Phase 3: remaining headroom flows to sources still short of
            // their demand ("until more bandwidth becomes available") —
            // recovery, not counted as renegotiation attempts.
            let mut headroom = capacity - total_granted;
            if headroom > 1e-12 {
                for i in 0..n {
                    if granted[i] + 1e-12 < demanded[i] {
                        let take = (demanded[i] - granted[i]).min(headroom);
                        granted[i] += take;
                        total_granted += take;
                        headroom -= take;
                        if headroom <= 1e-12 {
                            break;
                        }
                    }
                }
            }
            // Phase 4: data path — per-source buffers.
            for i in 0..n {
                let x = self.trace.bits((t + offsets[i]) % t_len);
                arrived += x;
                let mut q = backlog[i] + x - granted[i] * tau;
                if q < 0.0 {
                    q = 0.0;
                }
                if q > buffer {
                    lost += q - buffer;
                    q = buffer;
                }
                backlog[i] = q;
            }
        }

        ScenarioCOutcome {
            loss_fraction: if arrived > 0.0 { lost / arrived } else { 0.0 },
            attempts,
            failures,
        }
    }

    /// One replication with uniformly random phasing.
    pub fn run_with_random_phasing(
        &self,
        rate_per_source: f64,
        rng: &mut SimRng,
    ) -> ScenarioCOutcome {
        let offsets: Vec<usize> = (0..self.config.num_sources)
            .map(|_| rng.index(self.trace.len()))
            .collect();
        self.run(rate_per_source, &offsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, TrellisConfig};

    /// A two-level synthetic workload: long quiet phases at 100 b/s with
    /// bursts at 1000 b/s for 1/6 of the time.
    fn workload() -> FrameTrace {
        let bits: Vec<f64> = (0..1200)
            .map(|i| if i % 120 < 20 { 1000.0 } else { 100.0 })
            .collect();
        FrameTrace::new(1.0, bits)
    }

    fn schedule_for(trace: &FrameTrace, buffer: f64) -> Schedule {
        let grid = RateGrid::new(vec![100.0, 250.0, 500.0, 1000.0]);
        let opt = OfflineOptimizer::new(
            TrellisConfig::new(grid, CostModel::new(50.0, 1.0), buffer).with_drain_at_end(),
        );
        opt.optimize(trace).unwrap()
    }

    #[test]
    fn shared_buffer_loss_decreases_with_rate() {
        let tr = workload();
        let sim = SharedBufferSim::new(
            &tr,
            ScenarioBConfig {
                num_sources: 10,
                buffer_per_source: 500.0,
            },
        );
        let offsets: Vec<usize> = (0..10).map(|i| i * 117).collect();
        let lo = sim.loss_fraction(150.0, &offsets);
        let hi = sim.loss_fraction(400.0, &offsets);
        assert!(lo > hi, "loss must fall with rate: {lo} vs {hi}");
        assert_eq!(sim.loss_fraction(1000.0, &offsets), 0.0);
    }

    #[test]
    fn shared_buffer_beats_isolated_buffers() {
        // At the same per-source rate, sharing the buffer across phased
        // sources loses less than scenario (a)'s isolated queues.
        let tr = workload();
        let rate = 220.0;
        let buffer = 2000.0;
        let a_loss = scenario_a_loss(&tr, buffer, rate);
        let sim = SharedBufferSim::new(
            &tr,
            ScenarioBConfig {
                num_sources: 12,
                buffer_per_source: buffer,
            },
        );
        let offsets: Vec<usize> = (0..12).map(|i| i * 100).collect();
        let b_loss = sim.loss_fraction(rate, &offsets);
        assert!(
            b_loss < a_loss,
            "multiplexing must help: shared {b_loss} vs isolated {a_loss}"
        );
    }

    #[test]
    fn rcbr_mux_with_ample_capacity_is_lossless() {
        let tr = workload();
        let sched = schedule_for(&tr, 2000.0);
        let sim = StepwiseCbrMuxSim::new(
            &tr,
            &sched,
            ScenarioCConfig {
                num_sources: 8,
                buffer_per_source: 2000.0,
            },
        );
        let offsets: Vec<usize> = (0..8).map(|i| i * 150).collect();
        // Capacity = peak schedule rate per source: every request granted.
        let out = sim.run(sched.peak_service_rate(), &offsets);
        assert_eq!(out.failures, 0, "{out:?}");
        assert_eq!(out.loss_fraction, 0.0, "{out:?}");
        assert!(out.attempts >= 8, "each source allocates at least once");
    }

    #[test]
    fn rcbr_mux_failures_appear_under_pressure() {
        let tr = workload();
        let sched = schedule_for(&tr, 2000.0);
        let sim = StepwiseCbrMuxSim::new(
            &tr,
            &sched,
            ScenarioCConfig {
                num_sources: 8,
                buffer_per_source: 2000.0,
            },
        );
        // All sources in phase: bursts collide, and per-source capacity
        // below the schedule peak guarantees up-renegotiation failures.
        let offsets = vec![0usize; 8];
        let out = sim.run(0.6 * sched.peak_service_rate(), &offsets);
        assert!(out.failures > 0, "{out:?}");
        assert!(out.loss_fraction > 0.0, "{out:?}");
        assert!(out.failure_probability() > 0.0 && out.failure_probability() <= 1.0);
    }

    #[test]
    fn rcbr_random_phasing_needs_less_than_peak() {
        // With many phased sources, a per-source capacity well below the
        // schedule's peak still yields zero loss — the SMG the paper
        // claims.
        let tr = workload();
        let sched = schedule_for(&tr, 2000.0);
        let n = 30;
        let sim = StepwiseCbrMuxSim::new(
            &tr,
            &sched,
            ScenarioCConfig {
                num_sources: n,
                buffer_per_source: 2000.0,
            },
        );
        let mut rng = SimRng::from_seed(5);
        let c = 0.55 * sched.peak_service_rate();
        let mut total_loss = 0.0;
        for _ in 0..5 {
            total_loss += sim.run_with_random_phasing(c, &mut rng).loss_fraction;
        }
        assert!(
            total_loss / 5.0 < 1e-3,
            "phased RCBR should be nearly lossless at c=0.55*peak, got {}",
            total_loss / 5.0
        );
    }

    #[test]
    fn scenario_c_conserves_capacity() {
        // The granted total must never exceed capacity: verify indirectly
        // by checking zero loss when capacity >= N * peak even with
        // adversarial phasing.
        let tr = workload();
        let sched = schedule_for(&tr, 2000.0);
        let sim = StepwiseCbrMuxSim::new(
            &tr,
            &sched,
            ScenarioCConfig {
                num_sources: 4,
                buffer_per_source: 2000.0,
            },
        );
        for &off in &[[0usize, 0, 0, 0], [0, 300, 600, 900], [5, 5, 700, 700]] {
            let out = sim.run(sched.peak_service_rate(), &off);
            assert_eq!(out.failures, 0, "offsets {off:?}: {out:?}");
        }
    }
}
