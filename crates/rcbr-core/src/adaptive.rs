//! Rate adaptation on renegotiation failure — Section III-A1's third
//! option.
//!
//! "The signaling system could ask the user or application (perhaps out
//! of band) to reduce its data rate. ... responding to such signals
//! should be easy, particularly for adaptive codecs. Recent work suggests
//! that even stored video can be dynamically requantized in order to
//! respond to these signals."
//!
//! [`AdaptiveSource`] wraps an [`RcbrSource`] with that control loop: when
//! the buffer climbs into the red zone (which only happens while the
//! network is denying bandwidth), the codec is asked to requantize —
//! modeled as scaling the incoming bits — degrading *quality* instead of
//! dropping data. Degraded bits are accounted separately from lost bits:
//! the tradeoff the paper describes is precisely loss vs. fidelity.

use serde::{Deserialize, Serialize};

use crate::source::{RcbrSource, SourceEvent};

/// Configuration of the adaptation loop.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Buffer-occupancy fraction above which requantization begins.
    pub degrade_above: f64,
    /// The deepest requantization available: fraction of the original bits
    /// kept when the buffer is completely full.
    pub min_scale: f64,
}

impl AdaptiveConfig {
    /// Create a config.
    ///
    /// # Panics
    /// Panics unless `0 <= degrade_above < 1` and `0 < min_scale <= 1`.
    pub fn new(degrade_above: f64, min_scale: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&degrade_above),
            "degradation threshold must be in [0, 1)"
        );
        assert!(
            min_scale > 0.0 && min_scale <= 1.0,
            "minimum scale must be in (0, 1]"
        );
        Self {
            degrade_above,
            min_scale,
        }
    }
}

/// An RCBR source with a requantization control loop.
#[derive(Debug)]
pub struct AdaptiveSource {
    inner: RcbrSource,
    config: AdaptiveConfig,
    buffer: f64,
    offered_bits: f64,
    degraded_bits: f64,
}

impl AdaptiveSource {
    /// Wrap `inner` (whose end-system buffer is `buffer` bits — the same
    /// value it was constructed with).
    pub fn new(inner: RcbrSource, buffer: f64, config: AdaptiveConfig) -> Self {
        assert!(
            buffer > 0.0 && buffer.is_finite(),
            "buffer must be positive"
        );
        Self {
            inner,
            config,
            buffer,
            offered_bits: 0.0,
            degraded_bits: 0.0,
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &RcbrSource {
        &self.inner
    }

    /// Bits removed by requantization so far (quality loss, not data
    /// loss).
    pub fn degraded_bits(&self) -> f64 {
        self.degraded_bits
    }

    /// Fraction of offered bits removed by requantization.
    pub fn degraded_fraction(&self) -> f64 {
        if self.offered_bits > 0.0 {
            self.degraded_bits / self.offered_bits
        } else {
            0.0
        }
    }

    /// Fraction of (post-requantization) bits lost to buffer overflow.
    pub fn loss_fraction(&self) -> f64 {
        self.inner.loss_fraction()
    }

    /// The scale the codec would use at the current buffer occupancy:
    /// 1 below the threshold, falling linearly to `min_scale` at a full
    /// buffer.
    pub fn current_scale(&self) -> f64 {
        let frac = self.inner.backlog() / self.buffer;
        let c = &self.config;
        if frac <= c.degrade_above {
            1.0
        } else {
            let t = ((frac - c.degrade_above) / (1.0 - c.degrade_above)).min(1.0);
            1.0 + t * (c.min_scale - 1.0)
        }
    }

    /// Advance one slot; see [`RcbrSource::step`]. Arriving bits are
    /// requantized per [`Self::current_scale`] before entering the buffer.
    pub fn step(
        &mut self,
        arrived_bits: f64,
        network: impl FnOnce(f64, f64) -> bool,
    ) -> SourceEvent {
        let scale = self.current_scale();
        let sent = arrived_bits * scale;
        self.offered_bits += arrived_bits;
        self.degraded_bits += arrived_bits - sent;
        self.inner.step(sent, network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_schedule::Schedule;
    use rcbr_sim::SimRng;
    use rcbr_traffic::{FrameTrace, SyntheticMpegSource};

    fn video(seed: u64, frames: usize) -> FrameTrace {
        let mut rng = SimRng::from_seed(seed);
        SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
    }

    /// A starved setting: the network grants nothing above the mean rate.
    fn starved(trace: &FrameTrace, buffer: f64, adaptive: bool) -> (f64, f64) {
        let frames = trace.len();
        let schedule = Schedule::constant(trace.frame_interval(), frames, trace.mean_rate());
        if adaptive {
            let inner = RcbrSource::offline(schedule, buffer);
            let mut src = AdaptiveSource::new(inner, buffer, AdaptiveConfig::new(0.5, 0.3));
            for t in 0..frames {
                src.step(trace.bits(t), |_, _| false);
            }
            (src.loss_fraction(), src.degraded_fraction())
        } else {
            let mut src = RcbrSource::offline(schedule, buffer);
            for t in 0..frames {
                src.step(trace.bits(t), |_, _| false);
            }
            (src.loss_fraction(), 0.0)
        }
    }

    #[test]
    fn requantization_converts_loss_into_quality_degradation() {
        let trace = video(1, 9600);
        let buffer = 300_000.0;
        let (plain_loss, _) = starved(&trace, buffer, false);
        let (adaptive_loss, degraded) = starved(&trace, buffer, true);
        assert!(plain_loss > 0.0, "the starved baseline must lose data");
        assert!(
            adaptive_loss < plain_loss / 2.0,
            "adaptation must cut hard losses: {adaptive_loss} vs {plain_loss}"
        );
        assert!(degraded > 0.0, "the cut comes from quality, not magic");
    }

    #[test]
    fn no_degradation_when_capacity_is_ample() {
        let trace = video(2, 4800);
        let buffer = 300_000.0;
        let schedule = Schedule::constant(
            trace.frame_interval(),
            trace.len(),
            1.05 * trace.peak_rate(),
        );
        let inner = RcbrSource::offline(schedule, buffer);
        let mut src = AdaptiveSource::new(inner, buffer, AdaptiveConfig::new(0.5, 0.3));
        for t in 0..trace.len() {
            src.step(trace.bits(t), |_, _| true);
        }
        assert_eq!(src.degraded_bits(), 0.0);
        assert_eq!(src.loss_fraction(), 0.0);
        assert_eq!(src.current_scale(), 1.0);
    }

    #[test]
    fn scale_is_continuous_and_bounded() {
        let trace = video(3, 240);
        let buffer = 100_000.0;
        let schedule = Schedule::constant(trace.frame_interval(), trace.len(), 0.0);
        let inner = RcbrSource::offline(schedule, buffer);
        let mut src = AdaptiveSource::new(inner, buffer, AdaptiveConfig::new(0.4, 0.25));
        let mut last_scale = 1.0;
        for t in 0..trace.len() {
            let s = src.current_scale();
            assert!((0.25..=1.0).contains(&s), "scale {s} out of range");
            assert!(
                s <= last_scale + 1e-9,
                "scale rises only when the buffer drains"
            );
            last_scale = s;
            src.step(trace.bits(t), |_, _| false);
        }
        // Buffer pinned at full: the deepest requantization is active.
        assert!((src.current_scale() - 0.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        AdaptiveConfig::new(1.0, 0.5);
    }
}
