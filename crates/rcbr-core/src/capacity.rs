//! Capacity search — the Fig. 6 experiment driver.
//!
//! "For each `N` we do a binary search on `c`; for each step in the
//! search, we do many simulations, where each simulation has a randomized
//! phasing of the sources, and compute the average fraction of bits lost
//! as an estimate of the loss probability. At each step, we repeat the
//! simulations until the sample standard deviation of the estimate is less
//! than 20% of the estimate."
//!
//! [`search_capacity`] implements that procedure generically over a loss
//! estimator closure, so the same driver serves scenarios (b) and (c).

use rcbr_sim::stats::{ConfidenceInterval, RunningStats};
use serde::{Deserialize, Serialize};

/// Parameters of the search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Loss-probability target (the paper uses 1e-6).
    pub target_loss: f64,
    /// Stop replicating once the standard error is within this fraction of
    /// the mean (the paper uses 0.2).
    pub relative_precision: f64,
    /// Minimum replications per candidate rate.
    pub min_replications: u64,
    /// Maximum replications per candidate rate.
    pub max_replications: u64,
    /// Terminate the bisection when the bracket is within this fraction of
    /// the upper bound.
    pub rate_tolerance: f64,
}

impl SearchConfig {
    /// The paper's settings with a bounded replication budget.
    pub fn paper(target_loss: f64) -> Self {
        assert!(
            target_loss > 0.0 && target_loss < 1.0,
            "target must be in (0, 1)"
        );
        Self {
            target_loss,
            relative_precision: 0.2,
            min_replications: 5,
            max_replications: 60,
            rate_tolerance: 0.02,
        }
    }
}

/// One solved point: the minimum per-stream capacity meeting the target.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CapacityPoint {
    /// The found per-stream capacity, bits/second.
    pub rate: f64,
    /// Estimated loss at that capacity.
    pub loss: f64,
    /// Total replications spent.
    pub evaluations: u64,
}

/// Estimate the loss at a candidate rate by replicating `estimator` until
/// the paper's stopping rule fires. `estimator(rate, replication)` must
/// return a loss fraction; replications are indexed so the estimator can
/// derive independent random phasings.
///
/// Early exits: once the 95% CI for the mean lies entirely below (or
/// entirely above) the target, the verdict cannot change, so replication
/// stops.
fn estimate_loss(
    rate: f64,
    cfg: &SearchConfig,
    estimator: &mut dyn FnMut(f64, u64) -> f64,
    evaluations: &mut u64,
) -> (f64, bool) {
    let mut stats = RunningStats::new();
    for rep in 0..cfg.max_replications {
        stats.push(estimator(rate, rep));
        *evaluations += 1;
        if rep + 1 < cfg.min_replications {
            continue;
        }
        if let Some(ci) = ConfidenceInterval::t95(&stats) {
            if ci.hi() < cfg.target_loss {
                return (stats.mean(), true);
            }
            if ci.lo() > cfg.target_loss {
                return (stats.mean(), false);
            }
        }
        let mean = stats.mean();
        if mean == 0.0 {
            // Zero losses across the minimum replications: the relative
            // rule can never fire; accept.
            return (0.0, true);
        }
        if stats.std_error() <= cfg.relative_precision * mean {
            return (mean, mean <= cfg.target_loss);
        }
    }
    let mean = stats.mean();
    (mean, mean <= cfg.target_loss)
}

/// Binary-search the minimum rate in `[lo, hi]` whose estimated loss meets
/// the target. `hi` must be feasible (e.g. the peak rate); if `lo` is
/// already feasible it is returned directly.
///
/// # Panics
/// Panics if `lo > hi` or the config is degenerate.
pub fn search_capacity(
    lo: f64,
    hi: f64,
    cfg: &SearchConfig,
    mut estimator: impl FnMut(f64, u64) -> f64,
) -> CapacityPoint {
    assert!(lo <= hi, "search bracket reversed: [{lo}, {hi}]");
    assert!(cfg.rate_tolerance > 0.0, "rate tolerance must be positive");
    let mut evaluations = 0u64;
    let (loss_lo, ok_lo) = estimate_loss(lo, cfg, &mut estimator, &mut evaluations);
    if ok_lo {
        return CapacityPoint {
            rate: lo,
            loss: loss_lo,
            evaluations,
        };
    }
    let mut a = lo;
    let mut b = hi;
    let mut loss_b;
    // Assume hi is feasible; verify, and if not, return it with its loss so
    // the caller can see the miss.
    let (lb, ok_hi) = estimate_loss(hi, cfg, &mut estimator, &mut evaluations);
    loss_b = lb;
    if !ok_hi {
        return CapacityPoint {
            rate: hi,
            loss: loss_b,
            evaluations,
        };
    }
    while b - a > cfg.rate_tolerance * b {
        let mid = 0.5 * (a + b);
        let (loss_mid, ok) = estimate_loss(mid, cfg, &mut estimator, &mut evaluations);
        if ok {
            b = mid;
            loss_b = loss_mid;
        } else {
            a = mid;
        }
    }
    CapacityPoint {
        rate: b,
        loss: loss_b,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_known_threshold() {
        // Deterministic estimator: loss 1e-3 below rate 500, 1e-9 at or
        // above it.
        let cfg = SearchConfig::paper(1e-6);
        let point = search_capacity(
            100.0,
            1000.0,
            &cfg,
            |rate, _| {
                if rate >= 500.0 {
                    1e-9
                } else {
                    1e-3
                }
            },
        );
        assert!(
            point.rate >= 500.0 && point.rate <= 520.0,
            "rate {}",
            point.rate
        );
        assert!(point.loss <= 1e-6);
    }

    #[test]
    fn feasible_lower_bound_short_circuits() {
        let cfg = SearchConfig::paper(1e-6);
        let point = search_capacity(100.0, 1000.0, &cfg, |_, _| 0.0);
        assert_eq!(point.rate, 100.0);
        assert_eq!(point.loss, 0.0);
    }

    #[test]
    fn infeasible_upper_bound_is_reported() {
        let cfg = SearchConfig::paper(1e-6);
        let point = search_capacity(100.0, 1000.0, &cfg, |_, _| 0.5);
        assert_eq!(point.rate, 1000.0);
        assert!(point.loss > 1e-6);
    }

    #[test]
    fn noisy_estimator_converges() {
        // Loss decays smoothly with rate plus deterministic "noise" from
        // the replication index; threshold near 1e-6 at rate ~ 690.
        let cfg = SearchConfig::paper(1e-6);
        let point = search_capacity(100.0, 1000.0, &cfg, |rate, rep| {
            let base = (-rate / 50.0).exp();
            base * (0.5 + 0.1 * (rep % 10) as f64)
        });
        // exp(-r/50)*~1 = 1e-6 => r ≈ 50*13.8 ≈ 690.
        assert!((600.0..800.0).contains(&point.rate), "rate {}", point.rate);
    }

    #[test]
    fn early_exit_spends_few_replications_when_clear() {
        let cfg = SearchConfig::paper(1e-6);
        let mut calls = 0u64;
        let point = search_capacity(100.0, 1000.0, &cfg, |rate, _| {
            calls += 1;
            if rate >= 300.0 {
                0.0
            } else {
                0.9
            }
        });
        // Constant samples trigger the degenerate-CI exits at
        // min_replications each; the whole search should be cheap.
        assert!(calls <= 15 * cfg.min_replications, "calls {calls}");
        assert_eq!(point.evaluations, calls);
    }
}
