//! `salt-disjointness`: the declared fault-plane salt families are
//! pairwise disjoint and anchor the registry consts — the same
//! declared-layout cross-check `wire-layout` applies to byte offsets,
//! applied to salt space.
//!
//! A job's salt feeds the fault hash and breaks same-seq ordering ties,
//! so two traffic families sharing a salt share fault coin flips — the
//! PR 5 shard-identity regression. `salt-registry` already forces every
//! construction site through the named consts; this rule closes the
//! remaining gap: the consts themselves drifting into collision, or a
//! new salt being minted without a declared, audited family.
//!
//! `lint.toml [rule.salt-disjointness]` declares the families:
//!
//! ```toml
//! families = ["SALT_PRIMARY=0", "SALT_GHOST=1", "SALT_TEARDOWN_BASE=3.."]
//! ```
//!
//! `N..M` is a half-open range, `N..` is open-ended (teardown walks mint
//! `base + k`), `N` alone is the singleton. Checks, on the registry
//! file(s) this rule is scoped to:
//!
//! 1. declared families are pairwise disjoint (config self-check);
//! 2. every declared family is anchored by a `const <NAME>` whose value
//!    is the family's start;
//! 3. every `SALT_`-prefixed const in the registry belongs to a declared
//!    family — no unaudited salt can appear.

use super::Ctx;
use crate::lexer::TokKind;

/// Salts are a `u8`; open-ended families run to this bound.
const SALT_SPACE_END: u64 = 256;

struct Family {
    name: String,
    start: u64,
    end: u64,
}

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let raw = ctx.cfg_list("families");
    if raw.is_empty() {
        return; // nothing declared, nothing to prove
    }
    let mut families: Vec<Family> = Vec::new();
    for entry in &raw {
        let Some((name, range)) = entry.split_once('=') else {
            ctx.emit(1, format!("salt-disjointness: bad family entry {entry:?}"));
            return;
        };
        let range = range.trim();
        let (start, end) = if let Some((a, b)) = range.split_once("..") {
            let Ok(a) = a.trim().parse::<u64>() else {
                ctx.emit(1, format!("salt-disjointness: bad family entry {entry:?}"));
                return;
            };
            let b = if b.trim().is_empty() {
                SALT_SPACE_END
            } else {
                match b.trim().parse::<u64>() {
                    Ok(b) => b,
                    Err(_) => {
                        ctx.emit(1, format!("salt-disjointness: bad family entry {entry:?}"));
                        return;
                    }
                }
            };
            (a, b)
        } else {
            match range.parse::<u64>() {
                Ok(a) => (a, a + 1),
                Err(_) => {
                    ctx.emit(1, format!("salt-disjointness: bad family entry {entry:?}"));
                    return;
                }
            }
        };
        families.push(Family {
            name: name.trim().to_string(),
            start,
            end,
        });
    }

    // 1. Pairwise disjointness (and no duplicate names).
    for i in 0..families.len() {
        for j in i + 1..families.len() {
            let (a, b) = (&families[i], &families[j]);
            if a.name == b.name {
                ctx.emit(
                    1,
                    format!("salt-disjointness: family `{}` declared twice", a.name),
                );
            }
            if a.start < b.end && b.start < a.end {
                ctx.emit(
                    1,
                    format!(
                        "salt-disjointness: families `{}` ({}..{}) and `{}` ({}..{}) overlap — \
                         their traffic would share fault coin flips and ordering ties",
                        a.name, a.start, a.end, b.name, b.start, b.end
                    ),
                );
            }
        }
    }

    // The registry's salt consts.
    let prefix = ctx
        .cfg_str("const_prefix")
        .unwrap_or_else(|| "SALT_".into());
    let toks = &ctx.file.tokens;
    let mut consts: Vec<(String, u64, u32)> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("const") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if !name_tok.text.starts_with(&prefix) {
            continue;
        }
        for j in i + 2..(i + 9).min(toks.len()) {
            if toks[j].is_punct('=') {
                if let Some(v) = toks.get(j + 1).filter(|t| t.kind == TokKind::Int) {
                    consts.push((name_tok.text.clone(), v.int, name_tok.line));
                }
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
        }
    }

    // 2. Every family is anchored by its const.
    for fam in &families {
        match consts.iter().find(|(n, _, _)| n == &fam.name) {
            None => ctx.emit(
                1,
                format!(
                    "salt-disjointness: declared family `{}` has no `const {}` in the \
                     registry — the declaration is dead and the salt space unaudited",
                    fam.name, fam.name
                ),
            ),
            Some((_, v, line)) if *v != fam.start => ctx.emit(
                *line,
                format!(
                    "salt-disjointness: `{}` is {v} but its declared family starts at {} — \
                     the registry and lint.toml disagree about the salt space",
                    fam.name, fam.start
                ),
            ),
            _ => {}
        }
    }

    // 3. Every registry const belongs to a declared family.
    for (name, value, line) in &consts {
        if !families.iter().any(|f| &f.name == name) {
            ctx.emit(
                *line,
                format!(
                    "salt-disjointness: salt const `{name}` = {value} is not declared in \
                     [rule.salt-disjointness] families — declare its family so its \
                     disjointness from every other salt is checked"
                ),
            );
        }
    }
}
