//! `float-sort`: float comparators must be total (`f64::total_cmp`).
//!
//! `partial_cmp(..).expect(..)` inside a sort comparator panics the run
//! on the first NaN, and `unwrap_or(Equal)` silently produces an
//! inconsistent (non-total) order, which `sort_by` may answer with any
//! permutation — run-to-run nondeterminism in survivor pruning, level
//! grids, and admission descriptors. `f64::total_cmp` is a total order
//! (IEEE 754 totalOrder) and costs the same.
//!
//! Detection: inside the argument list of a comparator-taking call
//! (`sort_by`, `sort_unstable_by`, `max_by`, `min_by`,
//! `binary_search_by`), any use of `partial_cmp` is a violation.

use super::Ctx;

const COMPARATOR_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let toks = &ctx.file.tokens;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let is_sink =
            t.kind == crate::lexer::TokKind::Ident && COMPARATOR_SINKS.contains(&t.text.as_str());
        if is_sink && toks.get(i + 1).is_some_and(|a| a.is_punct('(')) {
            // Walk the balanced-paren argument.
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if toks[j].is_ident("partial_cmp") {
                    ctx.emit(
                        toks[j].line,
                        format!(
                            "partial_cmp inside {}() is not a total order (NaN \
                             panics or lies); use f64::total_cmp",
                            t.text
                        ),
                    );
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}
