//! `ptr-identity`: ban pointer-address identity in deterministic crates.
//!
//! Allocation addresses differ run to run (ASLR) and shard to shard, so
//! `std::ptr::eq` comparisons or `as *const _` casts used as identity
//! leak nondeterminism into anything keyed on them. Entities here all
//! have stable ids (`vci`, `seq`, switch index) — use those.

use super::Ctx;

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let toks = &ctx.file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // `ptr :: eq`
        if t.is_ident("ptr")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("eq"))
        {
            ctx.emit(
                t.line,
                "ptr::eq compares allocation addresses, which are not stable across \
                 runs; compare stable ids (vci, seq, switch index) instead"
                    .to_string(),
            );
        }
        // `as * const` / `as * mut` — a pointer cast; as identity or as a
        // sort key it is nondeterministic, and the product crates have no
        // legitimate use for raw pointers at all.
        if t.is_ident("as")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('*'))
            && toks
                .get(i + 2)
                .is_some_and(|a| a.is_ident("const") || a.is_ident("mut"))
        {
            ctx.emit(
                t.line,
                "raw-pointer casts introduce address-dependent behavior; the product \
                 crates index entities by stable ids, not addresses"
                    .to_string(),
            );
        }
    }
}
