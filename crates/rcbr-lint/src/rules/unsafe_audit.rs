//! `unsafe-audit`: product crates carry zero `unsafe`; shims justify it.
//!
//! Every determinism and recovery argument in DESIGN.md assumes no
//! UB-capable code path in the product crates, so `unsafe` there is a
//! violation outright (the `forbid_crates` list in `lint.toml`). In the
//! vendored shim crates an `unsafe` block is tolerated only with a
//! `// SAFETY:` comment on the same line or within three lines above,
//! stating the invariant that makes it sound.

use super::Ctx;

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let forbid = ctx.cfg_list("forbid_crates");
    let forbidden = forbid.iter().any(|c| c == &ctx.file.crate_name);
    for (i, t) in ctx.file.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let line = t.line;
        if forbidden {
            ctx.emit(
                line,
                format!(
                    "unsafe is banned in `{}` (a determinism-audited product crate); \
                     restructure with safe std primitives",
                    ctx.file.crate_name
                ),
            );
            continue;
        }
        let _ = i;
        if !ctx.file.comment_near(line, 3, "SAFETY:") {
            ctx.emit(
                line,
                "unsafe without a `// SAFETY:` justification within the three lines \
                 above; state the invariant that makes this sound"
                    .to_string(),
            );
        }
    }
}
