//! `unordered-iter`: ban `HashMap`/`HashSet` in deterministic crates.
//!
//! The hazard is iteration: RandomState hashes differently every process,
//! so iterating (or `.values().sum()`-ing) a hash container produces a
//! different order each run. Rather than chase every iteration site, the
//! rule bans the types outright in deterministic crates — lookups are the
//! same Big-O on `BTreeMap`, and everything that iterates becomes
//! deterministic for free. This is the rule that turned up the
//! `per_vci`/`vci_table`/`sessions` maps fixed in this PR.

use super::Ctx;

pub(super) fn check(ctx: &mut Ctx<'_>) {
    for t in &ctx.file.tokens {
        for banned in ["HashMap", "HashSet"] {
            if t.is_ident(banned) {
                let replacement = if banned == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                ctx.emit(
                    t.line,
                    format!(
                        "{banned} iteration order is randomized per process; use \
                         {replacement} (ordered, deterministic) or a sorted Vec"
                    ),
                );
            }
        }
    }
}
