//! `panic-path`: ban undocumented panics in engine and worker code.
//!
//! A panic in a worker poisons the shared barrier and hangs the other
//! shards until the scope join propagates it — so hot paths may only
//! panic through `expect("<invariant>")` with a meaningful message (the
//! message doubles as the documented invariant, and is greppable), or an
//! `assert!`/`unreachable!` carrying one. Flagged:
//!
//! * `.unwrap()` — an invariant with no documentation;
//! * `panic!`, `todo!`, `unimplemented!` — never valid in shipped paths;
//! * `unreachable!()` with no message;
//! * `expect("")` / `expect()`-like empty messages;
//! * `get_unchecked` — unchecked indexing trades a diagnosable panic for
//!   UB.
//!
//! Tests and benches are exempt (`include_tests = false` scope default).

use super::Ctx;
use crate::lexer::TokKind;

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let toks = &ctx.file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.unwrap()` — exact ident match, so unwrap_or/unwrap_or_else pass.
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|a| a.is_ident("unwrap"))
            && toks.get(i + 2).is_some_and(|a| a.is_punct('('))
            && toks.get(i + 3).is_some_and(|a| a.is_punct(')'))
        {
            ctx.emit(
                t.line,
                "unwrap() is an undocumented invariant; use expect(\"<why this \
                 cannot fail>\") or plumb the error"
                    .to_string(),
            );
        }
        // panic-family macros.
        for mac in ["panic", "todo", "unimplemented"] {
            if t.is_ident(mac) && toks.get(i + 1).is_some_and(|a| a.is_punct('!')) {
                ctx.emit(
                    t.line,
                    format!(
                        "{mac}! in an engine code path hangs sibling shards at the \
                         barrier; return an error or encode the invariant as \
                         expect/assert with a message"
                    ),
                );
            }
        }
        // Bare `unreachable!()`.
        if t.is_ident("unreachable")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('!'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct('('))
            && toks.get(i + 3).is_some_and(|a| a.is_punct(')'))
        {
            ctx.emit(
                t.line,
                "unreachable!() with no message — state why the arm is impossible \
                 so the panic text identifies the broken invariant"
                    .to_string(),
            );
        }
        // expect with an empty message: `expect ( "" )` lexes the empty
        // string to a Str token whose source line is a two-quote literal.
        if t.is_ident("expect")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
            && toks.get(i + 2).is_some_and(|a| a.kind == TokKind::Str)
            && toks.get(i + 3).is_some_and(|a| a.is_punct(')'))
        {
            let line_text = ctx.file.snippet(t.line);
            if line_text.contains("expect(\"\")") {
                ctx.emit(
                    t.line,
                    "expect(\"\") documents nothing; state the invariant".to_string(),
                );
            }
        }
        if t.is_ident("get_unchecked") || t.is_ident("get_unchecked_mut") {
            ctx.emit(
                t.line,
                "unchecked indexing trades a diagnosable panic for undefined \
                 behavior; use checked indexing and let the bounds encode the \
                 invariant"
                    .to_string(),
            );
        }
    }
}
