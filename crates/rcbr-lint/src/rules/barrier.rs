//! `barrier-discipline`: atomic loads only inside `snapshot*` helpers.
//!
//! This encodes the PR 2 engine-drain gotcha verbatim: a shared-counter
//! read that drives a worker's break/continue must happen in the window
//! between barriers where no shard can write. Reading `completed` after
//! the last drain barrier races with the next round's phase-A timeout
//! writes — one shard sees the target reached and leaves, the others
//! block on a barrier that will never fill.
//!
//! Enforcement: in the scoped files (`engine.rs`, `core.rs`, `audit.rs`,
//! `sequential.rs`), every `.load(` on an atomic must be inside a
//! function whose name starts with a sanctioned prefix (default
//! `snapshot`, configurable via `allow_fn_prefixes`). The helpers'
//! doc-comments state which barrier window makes the read safe, so the
//! whole audit surface is the handful of `snapshot_*` call sites.

use super::Ctx;
use crate::lexer::{enclosing_fn, fn_spans};

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let mut prefixes = ctx.cfg_list("allow_fn_prefixes");
    if prefixes.is_empty() {
        prefixes.push("snapshot".to_string());
    }
    let toks = &ctx.file.tokens;
    let spans = fn_spans(toks);
    for i in 0..toks.len() {
        if toks[i].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("load"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let fn_name = enclosing_fn(&spans, i).map(|s| s.name.clone());
            let sanctioned = fn_name
                .as_deref()
                .is_some_and(|n| prefixes.iter().any(|p| n.starts_with(p.as_str())));
            if !sanctioned {
                let where_ = fn_name.unwrap_or_else(|| "<top level>".to_string());
                ctx.emit(
                    toks[i].line,
                    format!(
                        "atomic load in `{where_}` — cross-shard counter reads must go \
                         through a snapshot_* helper taken between barriers (the PR 2 \
                         drain-loop deadlock: a read racing the next round's writes \
                         desynchronizes the shards' break decisions)"
                    ),
                );
            }
        }
    }
}
