//! `counter-order`: every `RunReport` field is classified deterministic
//! or wall-clock, and the deterministic set is exactly what the fuzz
//! oracle compares.
//!
//! The fuzzer's shard-identity oracle serializes a `ComparableReport` —
//! the deterministic subset of `RunReport` — to canonical JSON and
//! byte-compares it across shard counts. That subset is the *definition*
//! of the bit-identity invariant, and it used to live in two places that
//! could drift silently: the struct in `fuzz/oracle.rs` and people's
//! heads. This rule pins it in `lint.toml`:
//!
//! ```toml
//! [rule.counter-order]
//! report_file   = "crates/rcbr-runtime/src/report.rs"
//! report_struct = "RunReport"
//! oracle_file   = "crates/rcbr-bench/src/fuzz/oracle.rs"
//! oracle_struct = "ComparableReport"
//! deterministic = ["rounds", "supersteps", ...]
//! wall_clock    = ["wall_seconds", "num_shards", ...]
//! ```
//!
//! Checks (a whole-workspace pass — the two structs live in different
//! crates):
//!
//! 1. no field is classified both ways, and no registry entry is stale;
//! 2. every `RunReport` field appears in exactly one list — adding a
//!    field without deciding its determinism class is a lint error;
//! 3. the `deterministic` list equals the oracle struct's fields exactly
//!    — a deterministic field the oracle doesn't compare is a blind
//!    spot, a compared field not declared deterministic is an
//!    undocumented invariant.
//!
//! If the report file is not among the scanned sources (a partial scan,
//! e.g. linting one crate), the rule is silent; a full workspace scan
//! with a missing oracle file or struct is an error, not a skip.

use super::{path_matches, GraphCtx};
use crate::lexer::{TokKind, Token};

pub(super) fn check(ctx: &mut GraphCtx<'_>) {
    let Some(report_file) = ctx.cfg_str("report_file") else {
        return;
    };
    let report_struct = ctx
        .cfg_str("report_struct")
        .unwrap_or_else(|| "RunReport".into());
    let oracle_file = ctx.cfg_str("oracle_file");
    let oracle_struct = ctx
        .cfg_str("oracle_struct")
        .unwrap_or_else(|| "ComparableReport".into());
    let deterministic = ctx.cfg_list("deterministic");
    let wall_clock = ctx.cfg_list("wall_clock");

    let Some(rfi) = ctx
        .ws
        .files
        .iter()
        .position(|f| path_matches(&f.rel_path, &report_file))
    else {
        return; // partial scan: the subject isn't on the table
    };
    let Some((rline, rfields)) = struct_fields(&ctx.ws.files[rfi].tokens, &report_struct) else {
        ctx.emit(
            rfi,
            1,
            format!(
                "counter-order: struct `{report_struct}` not found in {report_file}; \
                 the determinism registry is unverifiable"
            ),
        );
        return;
    };

    // 1. Registry self-checks.
    for d in &deterministic {
        if wall_clock.contains(d) {
            ctx.emit(
                rfi,
                rline,
                format!(
                    "counter-order: field `{d}` is classified both deterministic and wall-clock"
                ),
            );
        }
    }
    for entry in deterministic.iter().chain(wall_clock.iter()) {
        if !rfields.iter().any(|(n, _)| n == entry) {
            ctx.emit(
                rfi,
                rline,
                format!(
                    "counter-order: registry entry `{entry}` matches no `{report_struct}` \
                     field — remove the stale classification"
                ),
            );
        }
    }

    // 2. Every report field is classified.
    for (name, line) in &rfields {
        let in_d = deterministic.contains(name);
        let in_w = wall_clock.contains(name);
        if !in_d && !in_w {
            ctx.emit(
                rfi,
                *line,
                format!(
                    "counter-order: `{report_struct}` field `{name}` has no determinism \
                     classification — add it to [rule.counter-order] `deterministic` \
                     (and to the fuzz oracle's `{oracle_struct}`) or to `wall_clock`"
                ),
            );
        }
    }

    // 3. The deterministic set is exactly what the oracle compares.
    let Some(oracle_file) = oracle_file else {
        return;
    };
    let Some(ofi) = ctx
        .ws
        .files
        .iter()
        .position(|f| path_matches(&f.rel_path, &oracle_file))
    else {
        ctx.emit(
            rfi,
            rline,
            format!(
                "counter-order: oracle file {oracle_file} was not scanned; the \
                 deterministic registry is unverifiable"
            ),
        );
        return;
    };
    let Some((oline, ofields)) = struct_fields(&ctx.ws.files[ofi].tokens, &oracle_struct) else {
        ctx.emit(
            ofi,
            1,
            format!(
                "counter-order: struct `{oracle_struct}` not found in {oracle_file}; \
                 the shard-identity oracle has lost its comparison set"
            ),
        );
        return;
    };
    for d in &deterministic {
        if !ofields.iter().any(|(n, _)| n == d) {
            ctx.emit(
                ofi,
                oline,
                format!(
                    "counter-order: deterministic field `{d}` is not compared by \
                     `{oracle_struct}` — the shard-identity oracle is blind to \
                     divergence in it"
                ),
            );
        }
    }
    for (name, line) in &ofields {
        if !deterministic.contains(name) {
            ctx.emit(
                ofi,
                *line,
                format!(
                    "counter-order: `{oracle_struct}` compares `{name}`, which is not \
                     declared deterministic — declare it or stop comparing it"
                ),
            );
        }
    }
}

/// The named fields of `struct <name> { ... }`: `(field, line)` pairs in
/// declaration order, plus the struct's own line. Understands `pub`,
/// `pub(crate)`, attributes, and path-typed fields (`a: m::T`).
fn struct_fields(toks: &[Token], name: &str) -> Option<(u32, Vec<(String, u32)>)> {
    let mut at = None;
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].is_ident("struct") && toks[i + 1].is_ident(name) {
            at = Some(i);
            break;
        }
    }
    let start = at?;
    // The body's opening brace (skip generics; `;` = unit/tuple struct).
    let mut angle = 0i64;
    let mut open = None;
    for (j, t) in toks.iter().enumerate().skip(start + 2) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_punct('{') {
            open = Some(j);
            break;
        } else if angle == 0 && (t.is_punct(';') || t.is_punct('(')) {
            return Some((toks[start].line, Vec::new()));
        }
    }
    let open = open?;
    let mut fields = Vec::new();
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
            if depth == 0 && t.is_punct('}') {
                break;
            }
        } else if depth == 1
            && t.kind == TokKind::Ident
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
            && (j == 0 || !toks[j - 1].is_punct(':'))
        {
            fields.push((t.text.clone(), t.line));
        }
        j += 1;
    }
    Some((toks[start].line, fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn struct_fields_skip_visibility_attrs_and_paths() {
        let toks = lex("
#[derive(Debug)]
pub struct RunReport {
    /// doc
    pub rounds: u64,
    pub(crate) audit: crate::audit::AuditReport,
    vcs: Vec<VcOutcome>,
}
")
        .tokens;
        let (line, fields) = struct_fields(&toks, "RunReport").unwrap();
        assert_eq!(line, 3);
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["rounds", "audit", "vcs"]);
    }
}
