//! `salt-registry`: fault-plane salts must be named consts from the one
//! registry module, never bare integer literals.
//!
//! A salt is wire-visible identity: it feeds the fault plane's stateless
//! `(seed, seq, hop, salt, lane)` hash and breaks same-`seq` processing
//! ties, so two cells that share a `(seq, salt)` pair share fault coin
//! flips and ordering. The PR 5 regression happened exactly this way —
//! teardown walks briefly reused the salt space of slot traffic and
//! shard bit-identity broke. Declaring every salt as a named const in a
//! single registry module (`registry` in `lint.toml`, normally
//! `crates/rcbr-net/src/salt.rs`) keeps the disjointness argument in one
//! auditable place.
//!
//! The check is window-based like `lease-units`: tokens split into
//! statement-ish windows at `;`, `,`, `{`, `}`. A window trips when it
//! contains
//!
//! 1. an identifier containing `salt`, and
//! 2. an integer literal directly bound to it or compared against it
//!    (previous punct starting `=`, `:`, `!`, `+`, or `-`), and
//! 3. no sanctioned name: an identifier starting with the registry
//!    const prefix (`SALT_` by default) or listed in `allow_idents`.
//!
//! The registry file itself is exempt — it is where the literals live.

use super::{path_matches, Ctx};
use crate::lexer::{TokKind, Token};

/// Is the integer at `idx` bound to or compared against salt state?
/// Previous-punct first bytes `=`, `:` catch bindings and `==`;
/// `!` catches `!=`; `+`/`-` catch arithmetic like the historical
/// `salt: 3 + i`. Shifts and plain argument positions stay exempt
/// (the fault hash legitimately shifts `salt as u64` by a literal).
fn bound_position(win: &[Token], idx: usize) -> bool {
    idx > 0
        && matches!(win[idx - 1].kind, TokKind::Punct)
        && matches!(
            win[idx - 1].text.as_bytes().first(),
            Some(b'=') | Some(b':') | Some(b'!') | Some(b'+') | Some(b'-')
        )
}

pub(super) fn check(ctx: &mut Ctx<'_>) {
    if let Some(registry) = ctx.cfg_str("registry") {
        if path_matches(&ctx.file.rel_path, &registry) {
            return;
        }
    }
    let prefix = ctx
        .cfg_str("const_prefix")
        .unwrap_or_else(|| "SALT_".to_string());
    let allow: Vec<String> = ctx
        .cfg_list("allow_idents")
        .iter()
        .map(|a| a.to_ascii_lowercase())
        .collect();
    let toks = &ctx.file.tokens;
    let mut start = 0usize;
    for i in 0..=toks.len() {
        let at_boundary = i == toks.len()
            || toks[i].is_punct(';')
            || toks[i].is_punct(',')
            || toks[i].is_punct('{')
            || toks[i].is_punct('}');
        if !at_boundary {
            continue;
        }
        scan_window(ctx, &toks[start..i], &prefix, &allow);
        start = i + 1;
    }
}

fn scan_window(ctx: &mut Ctx<'_>, win: &[Token], prefix: &str, allow: &[String]) {
    let mut keyed: Option<String> = None;
    let mut sanctioned = false;
    let mut literal: Option<&Token> = None;
    for (i, t) in win.iter().enumerate() {
        match t.kind {
            TokKind::Ident => {
                let lower = t.text.to_ascii_lowercase();
                if t.text.starts_with(prefix) || allow.contains(&lower) {
                    sanctioned = true;
                } else if keyed.is_none() && lower.contains("salt") {
                    keyed = Some(t.text.clone());
                }
            }
            TokKind::Int if literal.is_none() && bound_position(win, i) => {
                literal = Some(t);
            }
            _ => {}
        }
    }
    if sanctioned {
        return;
    }
    if let (Some(name), Some(lit)) = (keyed, literal) {
        ctx.emit(
            lit.line,
            format!(
                "raw integer bound to fault-plane salt `{name}`; salts are \
                 wire-visible identity and must be named consts declared in \
                 the salt registry module (see lint.toml `registry`), so \
                 their disjointness stays auditable in one place"
            ),
        );
    }
}
