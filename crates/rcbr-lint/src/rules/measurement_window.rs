//! `measurement-window`: estimator window and decay cadences must be
//! named, never raw superstep-count literals.
//!
//! The live admission subsystem schedules its measurement windows on the
//! superstep clock, and its determinism argument depends on every shard
//! rolling at the same instants. The convention mirrors `lease-units`:
//! the cadence lives in a field, const, or config knob whose name ends in
//! `_supersteps`, so a bare `next_roll + 64` next to window/decay state
//! cannot silently desynchronize the rolls when the cadence changes.
//!
//! Same window-based scan as `lease-units`: statement-ish windows split
//! at `;`, `,`, `{`, `}`; a window trips when it holds an identifier
//! naming estimator cadence state (`window`, `decay`, `ewma`,
//! `horizon`), an integer literal in value position, and no sanctioned
//! `*_supersteps` (or `allow_idents`) name.

use super::Ctx;
use crate::lexer::{TokKind, Token};

/// Identifier fragments that mark estimator cadence state. Deliberately
/// excludes `estimat…`: estimator *identifiers* are everywhere, but only
/// their window/decay schedules carry superstep units.
const CADENCE_KEYS: &[&str] = &["window", "decay", "ewma", "horizon"];

/// Does this (lowercased) identifier declare its superstep unit?
fn sanctioned_name(lower: &str) -> bool {
    lower.ends_with("_supersteps") || lower == "supersteps"
}

/// Is the integer at `idx` used as a value — bound or in arithmetic —
/// rather than sitting in plain argument position?
fn value_position(win: &[Token], idx: usize) -> bool {
    let prev_binds = idx > 0
        && matches!(win[idx - 1].kind, TokKind::Punct)
        && matches!(
            win[idx - 1].text.as_bytes().first(),
            Some(b'=') | Some(b':') | Some(b'+') | Some(b'-') | Some(b'<') | Some(b'>')
        );
    let next_combines = win
        .get(idx + 1)
        .is_some_and(|t| t.is_punct('+') || t.is_punct('-') || t.is_punct('<') || t.is_punct('>'));
    prev_binds || next_combines
}

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let allow: Vec<String> = ctx
        .cfg_list("allow_idents")
        .iter()
        .map(|a| a.to_ascii_lowercase())
        .collect();
    let toks = &ctx.file.tokens;
    let mut start = 0usize;
    for i in 0..=toks.len() {
        let at_boundary = i == toks.len()
            || toks[i].is_punct(';')
            || toks[i].is_punct(',')
            || toks[i].is_punct('{')
            || toks[i].is_punct('}');
        if !at_boundary {
            continue;
        }
        scan_window(ctx, &toks[start..i], &allow);
        start = i + 1;
    }
}

fn scan_window(ctx: &mut Ctx<'_>, win: &[Token], allow: &[String]) {
    let mut keyed: Option<String> = None;
    let mut sanctioned = false;
    let mut literal: Option<&Token> = None;
    for (i, t) in win.iter().enumerate() {
        match t.kind {
            TokKind::Ident => {
                let lower = t.text.to_ascii_lowercase();
                if sanctioned_name(&lower) || allow.contains(&lower) {
                    sanctioned = true;
                } else if keyed.is_none() && CADENCE_KEYS.iter().any(|k| lower.contains(k)) {
                    keyed = Some(t.text.clone());
                }
            }
            TokKind::Int if literal.is_none() && value_position(win, i) => {
                literal = Some(t);
            }
            _ => {}
        }
    }
    if sanctioned {
        return;
    }
    if let (Some(name), Some(lit)) = (keyed, literal) {
        ctx.emit(
            lit.line,
            format!(
                "raw integer near estimator cadence state `{name}` hard-codes a \
                 superstep count; route it through a *_supersteps field or const \
                 so every shard rolls the measurement window on the same named \
                 schedule"
            ),
        );
    }
}
