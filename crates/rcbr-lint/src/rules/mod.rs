//! The rule registry.
//!
//! Every rule is one entry in [`RULES`]: an id, a one-line summary, the
//! hazard it encodes (shown by `lint --explain`), and a check function
//! over a lexed [`SourceFile`]. Adding a rule is ~30 lines: write the
//! check in a new module, append one entry here, scope it in `lint.toml`,
//! and add a tripping + near-miss fixture pair under `tests/fixtures/`.
//!
//! Shared scoping semantics (all driven by the rule's `[rule.<id>]`
//! section in `lint.toml`):
//!
//! * `enabled = false` turns the rule off;
//! * `crates = [...]` limits it to those crate directories (empty = all);
//! * `files = [...]` limits it to paths ending in one of the entries;
//! * `allow_files = [...]` exempts designated files (audited boundaries);
//! * `include_tests = true` extends it into test targets and
//!   `#[cfg(test)]` regions (default: production code only);
//! * `// lint:allow(<id>)` on or above a line silences one diagnostic.

mod barrier;
mod counter_order;
mod float_accum;
mod float_sort;
mod lease_units;
mod measurement_window;
mod panic_path;
mod phase_discipline;
mod ptr_identity;
mod salt_disjointness;
mod salt_registry;
mod unordered_iter;
mod unsafe_audit;
mod wall_clock;
mod wire_layout;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::graph::Workspace;
use crate::source::SourceFile;

/// How a rule runs: over one file at a time, or once over the whole
/// workspace call graph.
pub enum Check {
    /// Per-file token scan (scoped by `crates`/`files`/`allow_files`).
    File(fn(&mut Ctx<'_>)),
    /// One whole-workspace pass over the [`Workspace`] call graph.
    Graph(fn(&mut GraphCtx<'_>)),
}

/// One static-analysis rule.
pub struct Rule {
    /// Stable identifier, used in diagnostics, `lint.toml` sections, and
    /// `lint:allow(...)` comments.
    pub id: &'static str,
    /// One-line summary for reports.
    pub summary: &'static str,
    /// The hazard this rule encodes and the sanctioned alternative —
    /// shown by `lint --explain <id>`.
    pub hazard: &'static str,
    /// The check itself.
    pub check: Check,
}

/// The registry. Order here is the order rules run and report in.
pub static RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        summary: "no wall-clock or ambient randomness in deterministic crates",
        hazard: "Instant::now/SystemTime/thread_rng make run outcomes depend on host \
                 timing, which breaks the bit-identical replay contract between the \
                 sharded engine and run_sequential. Wall time may only be read through \
                 the audited WallTimer boundary (crates/rcbr-runtime/src/report.rs), \
                 which feeds throughput reporting and never simulation state.",
        check: Check::File(wall_clock::check),
    },
    Rule {
        id: "unordered-iter",
        summary: "no HashMap/HashSet in deterministic crates",
        hazard: "std HashMap/HashSet iteration order is randomized per process \
                 (RandomState), so any fold, serialization, or float accumulation over \
                 one diverges between runs and between shards. Use BTreeMap/BTreeSet, \
                 or a Vec with explicit sorting.",
        check: Check::File(unordered_iter::check),
    },
    Rule {
        id: "ptr-identity",
        summary: "no pointer-as-identity comparisons",
        hazard: "std::ptr::eq and `as *const/*mut` casts compare allocation addresses, \
                 which differ run to run and shard to shard; identity must come from \
                 stable ids (vci, seq, switch index).",
        check: Check::File(ptr_identity::check),
    },
    Rule {
        id: "barrier-discipline",
        summary: "shared-counter loads only inside snapshot_* helpers",
        hazard: "The PR 2 engine-drain deadlock: an atomic counter read that drives a \
                 worker's break/continue must be snapshotted between barriers where no \
                 shard can write — reading after the drain barrier races with the next \
                 round's phase-A timeout writes and deadlocks the barrier. All \
                 cross-shard counter loads therefore live in functions prefixed \
                 `snapshot`, whose call sites are auditable.",
        check: Check::File(barrier::check),
    },
    Rule {
        id: "panic-path",
        summary: "no unwrap/panic!/todo! in engine and worker code paths",
        hazard: "A panic in a worker thread poisons the barrier and hangs every other \
                 shard (scoped threads join at the end of `run`). Hot paths must use \
                 `expect(\"<invariant>\")` with a meaningful message for genuine \
                 invariants, or plumb a Result. Bare unwrap(), panic!, todo!, \
                 unimplemented!, empty-message expect, and unchecked indexing \
                 (get_unchecked) are banned; tests and benches are exempt.",
        check: Check::File(panic_path::check),
    },
    Rule {
        id: "unsafe-audit",
        summary: "unsafe is banned in product crates; shims need // SAFETY:",
        hazard: "The product crates target zero unsafe: every determinism argument in \
                 DESIGN.md assumes no UB-capable code path. In the vendored shim \
                 crates, each `unsafe` must carry a `// SAFETY:` comment within three \
                 lines above it explaining why the invariant holds.",
        check: Check::File(unsafe_audit::check),
    },
    Rule {
        id: "float-sort",
        summary: "float comparators must use total_cmp",
        hazard: "sort_by(partial_cmp) on f64 panics (or lies, via unwrap_or) on NaN \
                 and is not a total order, so sorted output — and everything downstream \
                 of it, like trellis survivor pruning — can differ between runs the \
                 moment a NaN or -0.0 appears. f64::total_cmp is total, deterministic, \
                 and free.",
        check: Check::File(float_sort::check),
    },
    Rule {
        id: "float-accum",
        summary: "cross-shard float accumulation only in reduce_* reducers",
        hazard: "Float addition is not associative: summing per-shard values in \
                 partition-dependent order changes low bits and breaks bit-identity. \
                 Reductions over merged shard data therefore live in functions prefixed \
                 `reduce_`, which document their input ordering; `.sum()` anywhere else \
                 in the runtime crate is a violation.",
        check: Check::File(float_accum::check),
    },
    Rule {
        id: "lease-units",
        summary: "lease/timeout durations flow through *_supersteps names, not raw literals",
        hazard: "Every duration in the runtime is a superstep count, and the survivable \
                 signaling plane (leases, retry backoff, reroute settle windows) is \
                 tuned by relating those counts to each other. A bare integer next to \
                 lease/timeout/deadline/backoff state hides the unit and goes silently \
                 stale when the superstep cadence changes. Durations therefore live in \
                 fields or consts named *_supersteps; pre-existing documented names are \
                 grandfathered via allow_idents in lint.toml.",
        check: Check::File(lease_units::check),
    },
    Rule {
        id: "measurement-window",
        summary:
            "estimator window/decay cadences flow through *_supersteps names, not raw literals",
        hazard: "The live admission subsystem is deterministic only because every shard \
                 rolls its measurement windows at the same supersteps. A bare integer \
                 next to window/decay/ewma/horizon state hides that cadence and lets a \
                 local edit silently desynchronize the rolls (and thus the booking \
                 ceilings) across shard counts. Cadences therefore live in fields or \
                 consts named *_supersteps; audited names go in allow_idents.",
        check: Check::File(measurement_window::check),
    },
    Rule {
        id: "salt-registry",
        summary: "fault-plane salts are named consts from the one registry module",
        hazard: "A job's salt feeds the fault plane's (seed, seq, hop, salt, lane) hash \
                 and breaks same-seq processing ties, so two cells sharing a (seq, salt) \
                 pair share fault coin flips and ordering — the PR 5 shard-identity \
                 regression was a teardown walk reusing slot traffic's salt space. Bare \
                 salt literals scattered across crates make that disjointness unauditable; \
                 every salt therefore lives as a named const in the single registry \
                 module configured as `registry` in lint.toml.",
        check: Check::File(salt_registry::check),
    },
    Rule {
        id: "wire-layout",
        summary: "RM-cell byte offsets and CRC coverage match the documented layout",
        hazard: "The RM-cell serializer, parser, and checksum each hard-code byte \
                 offsets. If they drift apart — a field moves but the CRC range \
                 doesn't — corruption becomes silently undetectable or valid cells get \
                 rejected. This rule cross-checks encode(), decode(), and cell_crc() \
                 in rcbr-net/src/rm.rs against the layout declared in lint.toml.",
        check: Check::File(wire_layout::check),
    },
    Rule {
        id: "phase-discipline",
        summary: "phase-locked state mutators reachable only from declared quiescence entry points",
        hazard: "Route/lease/admission state (RouteState transitions, lease sweeps, \
                 measurement-window rolls, booking-ceiling updates) may only move at \
                 phase-A quiescence or in the end-of-run auditor, where every shard \
                 observes the same state — otherwise shard counts diverge (the PR 5/6 \
                 bug class). This rule walks the call graph caller-ward from every \
                 declared mutator (mutator_fns / state_idents writes) and flags any \
                 root that is not a declared entry_points quiescence function, with \
                 the full chain from root to mutation.",
        check: Check::Graph(phase_discipline::check),
    },
    Rule {
        id: "salt-disjointness",
        summary: "declared salt families are pairwise disjoint and anchor the registry consts",
        hazard: "A job's salt feeds the fault hash and breaks same-seq ordering ties, \
                 so two traffic families sharing salt space share fault coin flips — \
                 the PR 5 shard-identity regression. `salt-registry` forces every \
                 construction through named consts; this rule proves the consts \
                 themselves stay collision-free: the families declared in lint.toml \
                 must be pairwise disjoint, each anchored by its `const` at the \
                 family's start, and every SALT_ const must belong to a declared \
                 family so no unaudited salt can be minted.",
        check: Check::File(salt_disjointness::check),
    },
    Rule {
        id: "counter-order",
        summary: "RunReport fields are all determinism-classified; the oracle compares exactly the deterministic set",
        hazard: "The fuzz oracle byte-compares a ComparableReport — the deterministic \
                 subset of RunReport — across shard counts; that subset *is* the \
                 bit-identity invariant. If a new RunReport field lands without a \
                 classification, or the oracle struct drifts from the declared \
                 deterministic list, divergence goes silently untested (blind spot) \
                 or wall-clock noise turns the oracle flaky. This rule cross-checks \
                 the lint.toml registry against both structs on every run.",
        check: Check::Graph(counter_order::check),
    },
];

/// Look up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Per-file, per-rule check context: scoping plus filtered emission.
pub struct Ctx<'a> {
    pub file: &'a SourceFile,
    pub cfg: &'a Config,
    pub rule: &'static Rule,
    include_tests: bool,
    out: &'a mut Vec<Diagnostic>,
    suppressed: &'a mut usize,
}

impl<'a> Ctx<'a> {
    /// The rule's `lint.toml` section name.
    fn section(&self) -> String {
        format!("rule.{}", self.rule.id)
    }

    /// A string-list key from the rule's section.
    pub fn cfg_list(&self, key: &str) -> Vec<String> {
        self.cfg.list(&self.section(), key)
    }

    /// A string key from the rule's section.
    pub fn cfg_str(&self, key: &str) -> Option<String> {
        self.cfg.str_(&self.section(), key).map(str::to_string)
    }

    /// An integer key from the rule's section.
    pub fn cfg_int(&self, key: &str) -> Option<i64> {
        self.cfg.int(&self.section(), key)
    }

    /// Emit a diagnostic at `line`, unless the line is test code outside
    /// the rule's scope or carries a `lint:allow` for this rule.
    pub fn emit(&mut self, line: u32, message: String) {
        if !self.include_tests && self.file.is_test_at(line) {
            return;
        }
        if self.file.is_suppressed(self.rule.id, line) {
            *self.suppressed += 1;
            return;
        }
        self.out.push(Diagnostic {
            rule: self.rule.id.to_string(),
            path: self.file.rel_path.clone(),
            line,
            message,
            snippet: self.file.snippet(line),
        });
    }
}

/// Does `rule` apply to `file` at all, per its `lint.toml` scope?
pub(crate) fn rule_in_scope(rule: &Rule, file: &SourceFile, cfg: &Config) -> bool {
    let section = format!("rule.{}", rule.id);
    if !cfg.bool_or(&section, "enabled", true) {
        return false;
    }
    let include_tests = cfg.bool_or(&section, "include_tests", false);
    if file.is_test_target && !include_tests {
        return false;
    }
    let crates = cfg.list(&section, "crates");
    if !crates.is_empty() && !crates.iter().any(|c| c == &file.crate_name) {
        return false;
    }
    let files = cfg.list(&section, "files");
    if !files.is_empty() && !files.iter().any(|f| path_matches(&file.rel_path, f)) {
        return false;
    }
    let allow = cfg.list(&section, "allow_files");
    if allow.iter().any(|f| path_matches(&file.rel_path, f)) {
        return false;
    }
    true
}

/// A config path entry matches a file if it equals the relative path or
/// is a suffix of it starting at a path-component boundary.
pub(crate) fn path_matches(rel_path: &str, entry: &str) -> bool {
    rel_path == entry
        || rel_path
            .strip_suffix(entry)
            .is_some_and(|prefix| prefix.ends_with('/'))
}

/// Whole-workspace check context for [`Check::Graph`] rules: the call
/// graph, the rule's config section, and filtered emission addressed by
/// workspace file index.
pub struct GraphCtx<'a> {
    pub ws: &'a Workspace,
    pub cfg: &'a Config,
    pub rule: &'static Rule,
    include_tests: bool,
    out: &'a mut Vec<Diagnostic>,
    suppressed: &'a mut usize,
}

impl<'a> GraphCtx<'a> {
    fn section(&self) -> String {
        format!("rule.{}", self.rule.id)
    }

    /// A string-list key from the rule's section.
    pub fn cfg_list(&self, key: &str) -> Vec<String> {
        self.cfg.list(&self.section(), key)
    }

    /// A string key from the rule's section.
    pub fn cfg_str(&self, key: &str) -> Option<String> {
        self.cfg.str_(&self.section(), key).map(str::to_string)
    }

    /// Does this rule's per-file scoping (`crates`/`files`/`allow_files`)
    /// admit `file`? Graph rules see the whole workspace; this is how
    /// they honor the shared scoping semantics per emission site.
    pub fn file_in_scope(&self, file: &SourceFile) -> bool {
        rule_in_scope(self.rule, file, self.cfg)
    }

    /// Emit a diagnostic in workspace file `file_idx` at `line`, with
    /// the same test-region and `lint:allow` filtering as [`Ctx::emit`].
    pub fn emit(&mut self, file_idx: usize, line: u32, message: String) {
        let file = &self.ws.files[file_idx];
        if !self.include_tests && file.is_test_at(line) {
            return;
        }
        if file.is_suppressed(self.rule.id, line) {
            *self.suppressed += 1;
            return;
        }
        self.out.push(Diagnostic {
            rule: self.rule.id.to_string(),
            path: file.rel_path.clone(),
            line,
            message,
            snippet: file.snippet(line),
        });
    }
}

/// Run every in-scope [`Check::File`] rule over one file, appending
/// diagnostics to `out`. Returns, per rule id, how many diagnostics
/// `lint:allow` comments silenced.
pub fn check_file(
    file: &SourceFile,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) -> std::collections::BTreeMap<&'static str, usize> {
    let mut all_suppressed = std::collections::BTreeMap::new();
    for rule in RULES {
        let Check::File(check) = rule.check else {
            continue;
        };
        if !rule_in_scope(rule, file, cfg) {
            continue;
        }
        let include_tests = cfg.bool_or(&format!("rule.{}", rule.id), "include_tests", false);
        let mut suppressed = 0usize;
        let mut ctx = Ctx {
            file,
            cfg,
            rule,
            include_tests,
            out,
            suppressed: &mut suppressed,
        };
        check(&mut ctx);
        if suppressed > 0 {
            *all_suppressed.entry(rule.id).or_insert(0) += suppressed;
        }
    }
    all_suppressed
}

/// Run every enabled [`Check::Graph`] rule once over the workspace,
/// appending diagnostics to `out`. Returns per-rule `lint:allow`
/// suppression counts.
pub fn check_graph(
    ws: &Workspace,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) -> std::collections::BTreeMap<&'static str, usize> {
    let mut all_suppressed = std::collections::BTreeMap::new();
    for rule in RULES {
        let Check::Graph(check) = rule.check else {
            continue;
        };
        let section = format!("rule.{}", rule.id);
        if !cfg.bool_or(&section, "enabled", true) {
            continue;
        }
        let include_tests = cfg.bool_or(&section, "include_tests", false);
        let mut suppressed = 0usize;
        let mut ctx = GraphCtx {
            ws,
            cfg,
            rule,
            include_tests,
            out,
            suppressed: &mut suppressed,
        };
        check(&mut ctx);
        if suppressed > 0 {
            *all_suppressed.entry(rule.id).or_insert(0) += suppressed;
        }
    }
    all_suppressed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_matching_respects_component_boundaries() {
        assert!(path_matches(
            "crates/rcbr-runtime/src/engine.rs",
            "engine.rs"
        ));
        assert!(path_matches(
            "crates/rcbr-runtime/src/engine.rs",
            "src/engine.rs"
        ));
        assert!(path_matches(
            "crates/rcbr-runtime/src/engine.rs",
            "crates/rcbr-runtime/src/engine.rs"
        ));
        // `ngine.rs` is not a component-aligned suffix.
        assert!(!path_matches("crates/x/src/engine.rs", "ngine.rs"));
    }

    #[test]
    fn registry_ids_are_unique_and_kebab() {
        let mut seen = std::collections::BTreeSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(
                r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id {} is not kebab-case",
                r.id
            );
        }
        assert!(RULES.len() >= 6, "the catalog must stay at >= 6 rules");
    }
}
