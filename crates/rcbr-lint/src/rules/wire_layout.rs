//! `wire-layout`: the RM-cell codec matches its declared byte layout.
//!
//! The serializer (`encode`), parser (`decode`), and checksum
//! (`cell_crc`) each hard-code byte offsets into the 16-byte cell. If one
//! drifts — a field moves, the CRC range isn't updated — corruption
//! becomes silently undetectable, or every valid cell gets rejected.
//! The layout is declared once, in `lint.toml`:
//!
//! ```toml
//! [rule.wire-layout]
//! files = ["crates/rcbr-net/src/rm.rs"]
//! total = 16
//! size_const = "RM_CELL_BYTES"
//! crc_field = "crc"
//! fields = ["vci=0..4", "kind=4", "denied=5", "crc=6..8", "rate=8..16"]
//! ```
//!
//! Checks, per scoped file:
//!
//! 1. the declared fields tile `0..total` exactly (config self-check);
//! 2. the size constant equals `total`;
//! 3. every literal index (`buf[a..b]`, `cell[a]`) in `encode` and
//!    `decode` lies inside one declared field, and together they cover
//!    the whole cell — so neither serializer nor parser can straddle or
//!    miss a field boundary (the checksum is exempt from the
//!    one-field check: it may span contiguous fields);
//! 4. the literal ranges in `cell_crc` cover exactly `0..total` minus the
//!    CRC field — the checksum protects every byte it can and never
//!    checksums itself.

use super::Ctx;
use crate::lexer::{fn_spans, TokKind, Token};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    start: u64,
    end: u64,
}

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let total = match ctx.cfg_int("total") {
        Some(t) if t > 0 => t as u64,
        _ => {
            ctx.emit(
                1,
                "wire-layout: missing/invalid `total` in lint.toml".into(),
            );
            return;
        }
    };
    let Some(fields) = parse_fields(ctx, total) else {
        return; // parse_fields emitted the config diagnostic
    };
    let crc_field = ctx.cfg_str("crc_field").unwrap_or_else(|| "crc".into());

    // 2. The on-wire size constant.
    if let Some(name) = ctx.cfg_str("size_const") {
        match const_value(&ctx.file.tokens, &name) {
            Some((v, line)) if v != total => ctx.emit(
                line,
                format!("{name} is {v} but the declared layout totals {total} bytes"),
            ),
            None => ctx.emit(
                1,
                format!("size constant `{name}` not found; the layout is unverifiable"),
            ),
            _ => {}
        }
    }

    // 3 & 4. Each codec function's literal index ranges.
    let spans = fn_spans(&ctx.file.tokens);
    let mut check_fn = |key: &str, default: &str, must_cover: &[(u64, u64)], is_crc: bool| {
        let name = ctx.cfg_str(key).unwrap_or_else(|| default.to_string());
        let mut ranges: Vec<(u64, u64, u32)> = Vec::new();
        let mut found = false;
        for span in spans.iter().filter(|s| s.name == name) {
            found = true;
            ranges.extend(collect_ranges(
                &ctx.file.tokens[span.body_start..span.body_end],
            ));
        }
        if !found {
            ctx.emit(
                1,
                format!("codec function `{name}` not found; the layout is unverifiable"),
            );
            return;
        }
        // Every literal range in the serializer/parser must sit inside
        // one declared field (the checksum may legitimately span several
        // contiguous fields; for it, coverage below is the real check)...
        for &(a, b, line) in &ranges {
            let inside_one = is_crc || fields.iter().any(|f| f.start <= a && b <= f.end);
            if !inside_one {
                ctx.emit(
                    line,
                    format!(
                        "`{name}` touches bytes {a}..{b}, which straddles or escapes \
                         the declared field boundaries ({})",
                        render_fields(&fields)
                    ),
                );
            }
        }
        // ...and their union must cover exactly what this function owes.
        let union = merge(ranges.iter().map(|&(a, b, _)| (a, b)).collect());
        let expected = merge(must_cover.to_vec());
        if union != expected {
            let role = if is_crc {
                "checksum coverage"
            } else {
                "field coverage"
            };
            ctx.emit(
                fn_line(&spans, &name, &ctx.file.tokens),
                format!(
                    "`{name}` {role} is {} but the declared layout requires {}",
                    render_ranges(&union),
                    render_ranges(&expected)
                ),
            );
        }
    };

    let whole: Vec<(u64, u64)> = vec![(0, total)];
    let sans_crc: Vec<(u64, u64)> = fields
        .iter()
        .filter(|f| f.name != crc_field)
        .map(|f| (f.start, f.end))
        .collect();
    check_fn("encode_fn", "encode", &whole, false);
    check_fn("decode_fn", "decode", &whole, false);
    check_fn("crc_fn", "cell_crc", &sans_crc, true);
}

/// Parse `fields = ["vci=0..4", "kind=4", ...]` and verify they tile
/// `0..total`.
fn parse_fields(ctx: &mut Ctx<'_>, total: u64) -> Option<Vec<Field>> {
    let raw = ctx.cfg_list("fields");
    if raw.is_empty() {
        ctx.emit(1, "wire-layout: no `fields` declared in lint.toml".into());
        return None;
    }
    let mut fields = Vec::new();
    for entry in &raw {
        let Some((name, range)) = entry.split_once('=') else {
            ctx.emit(1, format!("wire-layout: bad field entry {entry:?}"));
            return None;
        };
        let (start, end) = if let Some((a, b)) = range.split_once("..") {
            (a.trim().parse().ok()?, b.trim().parse().ok()?)
        } else {
            let a: u64 = range.trim().parse().ok()?;
            (a, a + 1)
        };
        fields.push(Field {
            name: name.trim().to_string(),
            start,
            end,
        });
    }
    let mut sorted: Vec<(u64, u64)> = fields.iter().map(|f| (f.start, f.end)).collect();
    sorted.sort_unstable();
    let tiles = sorted.first().map(|r| r.0) == Some(0)
        && sorted.last().map(|r| r.1) == Some(total)
        && sorted.windows(2).all(|w| w[0].1 == w[1].0);
    if !tiles {
        ctx.emit(
            1,
            format!(
                "wire-layout: declared fields {} do not tile 0..{total}",
                render_fields(&fields)
            ),
        );
        return None;
    }
    Some(fields)
}

/// The value of `const NAME ... = <int>`, with its line.
fn const_value(toks: &[Token], name: &str) -> Option<(u64, u32)> {
    for i in 0..toks.len() {
        if toks[i].is_ident(name) {
            // Scan a short window for `= <int>`.
            for j in i + 1..(i + 8).min(toks.len()) {
                if toks[j].is_punct('=') {
                    if let Some(v) = toks.get(j + 1).filter(|t| t.kind == TokKind::Int) {
                        return Some((v.int, toks[i].line));
                    }
                }
                if toks[j].is_punct(';') {
                    break;
                }
            }
        }
    }
    None
}

/// Literal index expressions in a token slice: `[ a .. b ]` and `[ a ]`.
fn collect_ranges(toks: &[Token]) -> Vec<(u64, u64, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('[') {
            continue;
        }
        let Some(a) = toks.get(i + 1).filter(|t| t.kind == TokKind::Int) else {
            continue;
        };
        if toks.get(i + 2).is_some_and(|t| t.is_punct(']')) {
            out.push((a.int, a.int + 1, a.line));
        } else if toks.get(i + 2).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('.'))
        {
            if let Some(b) = toks.get(i + 4).filter(|t| t.kind == TokKind::Int) {
                if toks.get(i + 5).is_some_and(|t| t.is_punct(']')) {
                    out.push((a.int, b.int, a.line));
                }
            }
        }
    }
    out
}

/// Merge and sort ranges into a canonical disjoint union.
fn merge(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (a, b) in ranges {
        if let Some(last) = out.last_mut() {
            if a <= last.1 {
                last.1 = last.1.max(b);
                continue;
            }
        }
        out.push((a, b));
    }
    out
}

fn fn_line(spans: &[crate::lexer::FnSpan], name: &str, toks: &[Token]) -> u32 {
    spans
        .iter()
        .find(|s| s.name == name)
        .map(|s| toks[s.fn_tok].line)
        .unwrap_or(1)
}

fn render_fields(fields: &[Field]) -> String {
    let parts: Vec<String> = fields
        .iter()
        .map(|f| format!("{}={}..{}", f.name, f.start, f.end))
        .collect();
    parts.join(", ")
}

fn render_ranges(ranges: &[(u64, u64)]) -> String {
    if ranges.is_empty() {
        return "<nothing>".to_string();
    }
    let parts: Vec<String> = ranges.iter().map(|(a, b)| format!("{a}..{b}")).collect();
    parts.join(" + ")
}
