//! `lease-units`: lease/timeout durations must be named, never raw
//! superstep-count literals.
//!
//! Every duration in the runtime is measured in supersteps, and the
//! convention is that the count lives in a field, const, or config knob
//! whose name ends in `_supersteps` — so the unit is visible at every
//! use site and a cadence change (e.g. more phases per round) has one
//! place to audit. A bare `now + 48` next to lease/timeout/deadline
//! state hard-codes a count whose unit is invisible and silently wrong
//! the moment the superstep cadence changes.
//!
//! The check is window-based: tokens are split into statement-ish
//! windows at `;`, `,`, `{`, `}`. A window trips when it contains
//!
//! 1. an identifier naming duration state (`lease`, `timeout`,
//!    `deadline`, `backoff`, `expir…`, `until`, `grace`, `ttl`), and
//! 2. an integer literal in a *value* position — directly bound
//!    (after `=` or `:`) or combined arithmetically / compared
//!    (adjacent to `+`, `-`, `<`, `>`), and
//! 3. no sanctioned name: an identifier ending in `_supersteps` (or
//!    exactly `supersteps`), or one listed in the rule's
//!    `allow_idents` — the audited pre-existing duration names whose
//!    doc comments pin the unit.
//!
//! Literals in plain argument position (`fetch_add(1, …)`) are counter
//! bumps, not durations, and stay exempt.

use super::Ctx;
use crate::lexer::{TokKind, Token};

/// Identifier fragments that mark duration state. `expir` covers
/// `expire`, `expired`, `expires_at`, `expiry`.
const DURATION_KEYS: &[&str] = &[
    "lease", "timeout", "deadline", "backoff", "expir", "until", "grace", "ttl",
];

/// Does this (lowercased) identifier declare its superstep unit?
fn sanctioned_name(lower: &str) -> bool {
    lower.ends_with("_supersteps") || lower == "supersteps"
}

/// Is the integer at `idx` used as a value — bound or in arithmetic —
/// rather than sitting in plain argument position?
fn value_position(win: &[Token], idx: usize) -> bool {
    let prev_binds = idx > 0
        && matches!(win[idx - 1].kind, TokKind::Punct)
        && matches!(
            win[idx - 1].text.as_bytes().first(),
            Some(b'=') | Some(b':') | Some(b'+') | Some(b'-') | Some(b'<') | Some(b'>')
        );
    let next_combines = win
        .get(idx + 1)
        .is_some_and(|t| t.is_punct('+') || t.is_punct('-') || t.is_punct('<') || t.is_punct('>'));
    prev_binds || next_combines
}

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let allow: Vec<String> = ctx
        .cfg_list("allow_idents")
        .iter()
        .map(|a| a.to_ascii_lowercase())
        .collect();
    let toks = &ctx.file.tokens;
    let mut start = 0usize;
    for i in 0..=toks.len() {
        let at_boundary = i == toks.len()
            || toks[i].is_punct(';')
            || toks[i].is_punct(',')
            || toks[i].is_punct('{')
            || toks[i].is_punct('}');
        if !at_boundary {
            continue;
        }
        scan_window(ctx, &toks[start..i], &allow);
        start = i + 1;
    }
}

fn scan_window(ctx: &mut Ctx<'_>, win: &[Token], allow: &[String]) {
    let mut keyed: Option<String> = None;
    let mut sanctioned = false;
    let mut literal: Option<&Token> = None;
    for (i, t) in win.iter().enumerate() {
        match t.kind {
            TokKind::Ident => {
                let lower = t.text.to_ascii_lowercase();
                if sanctioned_name(&lower) || allow.contains(&lower) {
                    sanctioned = true;
                } else if keyed.is_none() && DURATION_KEYS.iter().any(|k| lower.contains(k)) {
                    keyed = Some(t.text.clone());
                }
            }
            TokKind::Int if literal.is_none() && value_position(win, i) => {
                literal = Some(t);
            }
            _ => {}
        }
    }
    if sanctioned {
        return;
    }
    if let (Some(name), Some(lit)) = (keyed, literal) {
        ctx.emit(
            lit.line,
            format!(
                "raw integer near duration state `{name}` hard-codes a superstep \
                 count; route it through a *_supersteps field or const so the \
                 unit is named (audited legacy names go in lint.toml \
                 allow_idents)"
            ),
        );
    }
}
