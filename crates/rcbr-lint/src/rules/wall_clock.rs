//! `wall-clock`: ban ambient time and RNG sources in deterministic crates.
//!
//! Flags `Instant::now`, `SystemTime` (any use — even `UNIX_EPOCH` math
//! smuggles wall time in), `thread_rng`, `ThreadRng`, and
//! `rand::random`. The sanctioned boundary is the `WallTimer` helper in
//! `rcbr-runtime/src/report.rs` (an `allow_files` entry), which measures
//! host time for throughput reporting only.

use super::Ctx;

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let toks = &ctx.file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            ctx.emit(
                t.line,
                "Instant::now() reads the host clock; runs stop being replayable. \
                 Use the logical superstep clock, or WallTimer in report.rs for \
                 throughput accounting"
                    .to_string(),
            );
        }
        if t.is_ident("SystemTime") {
            ctx.emit(
                t.line,
                "SystemTime smuggles wall-clock time into a deterministic crate; \
                 derive timing from the logical clock instead"
                    .to_string(),
            );
        }
        if t.is_ident("thread_rng") || t.is_ident("ThreadRng") {
            ctx.emit(
                t.line,
                "thread_rng is OS-seeded and unreplayable; use the seeded in-tree \
                 ChaCha stream (rcbr_sim::rng) so every draw derives from the run seed"
                    .to_string(),
            );
        }
        if t.is_ident("random")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks
                .get(i.wrapping_sub(3))
                .is_some_and(|a| a.is_ident("rand"))
        {
            ctx.emit(
                t.line,
                "rand::random draws from an ambient generator; use the seeded \
                 in-tree RNG"
                    .to_string(),
            );
        }
    }
}
