//! `float-accum`: float reductions in the runtime live in `reduce_*` fns.
//!
//! Float addition is not associative, so a sum over data whose order
//! depends on the shard partition (or on hash iteration) differs in its
//! low bits between runs — exactly the drift the bit-identity tests would
//! then chase for hours. The runtime's sanctioned reducers are functions
//! prefixed `reduce_` (configurable), whose doc-comments state why their
//! input order is partition-independent (e.g. "finals are sorted by VCI
//! before this is called"). Any `.sum(` outside one is a violation.

use super::Ctx;
use crate::lexer::{enclosing_fn, fn_spans};

pub(super) fn check(ctx: &mut Ctx<'_>) {
    let mut prefixes = ctx.cfg_list("allow_fn_prefixes");
    if prefixes.is_empty() {
        prefixes.push("reduce_".to_string());
    }
    let toks = &ctx.file.tokens;
    let spans = fn_spans(toks);
    for i in 0..toks.len() {
        if toks[i].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_ident("sum")) {
            let fn_name = enclosing_fn(&spans, i).map(|s| s.name.clone());
            let sanctioned = fn_name
                .as_deref()
                .is_some_and(|n| prefixes.iter().any(|p| n.starts_with(p.as_str())));
            if !sanctioned {
                let where_ = fn_name.unwrap_or_else(|| "<top level>".to_string());
                ctx.emit(
                    toks[i].line,
                    format!(
                        "float accumulation in `{where_}` — reductions over merged \
                         shard data must live in a reduce_* function documenting its \
                         partition-independent input order"
                    ),
                );
            }
        }
    }
}
