//! `phase-discipline`: phase-locked state mutators are reachable only
//! from declared phase-A quiescence entry points.
//!
//! The BSP engine's bit-identity argument (DESIGN.md §6) hinges on
//! *when* shared route/lease/admission state may move: lease sweeps,
//! measurement-window rolls, booking-ceiling updates, and `RouteState`
//! transitions happen at phase-A quiescence (or in the end-of-run
//! auditor), where every shard observes the same state. PRs 5 and 6 each
//! shipped a fix for exactly this class of bug and left the invariant as
//! prose; this rule proves it over the call graph on every run.
//!
//! Configuration (`lint.toml [rule.phase-discipline]`):
//!
//! * `mutator_fns` — function names that mutate phase-locked state
//!   (`expire_leases`, `roll`, `set_admit_ceiling`, …);
//! * `state_idents` — identifiers whose *assignment* marks the enclosing
//!   function as a mutator (`route_state`: both `x.route_state = …` and
//!   `&mut self.route_state` in a `mem::replace`);
//! * `entry_points` — the sanctioned quiescence roots, as
//!   `path/suffix.rs::name` (or a bare `name` matching any file).
//!
//! The check walks caller-ward from every mutator. A walk that reaches a
//! declared entry point is sanctioned and stops; any *other* root (a
//! function nobody calls — including the mutator itself if uncalled) is
//! flagged with the full chain from that root down to the mutation.

use std::collections::BTreeSet;

use super::{path_matches, GraphCtx};
use crate::lexer::TokKind;

pub(super) fn check(ctx: &mut GraphCtx<'_>) {
    let mutator_fns = ctx.cfg_list("mutator_fns");
    let state_idents = ctx.cfg_list("state_idents");
    let entry_points = ctx.cfg_list("entry_points");
    if mutator_fns.is_empty() && state_idents.is_empty() {
        return; // nothing declared, nothing to prove
    }

    let ws = ctx.ws;
    let is_entry = |fn_id: usize| -> bool {
        let f = &ws.fns[fn_id];
        let rel = &ws.files[f.file].rel_path;
        entry_points.iter().any(|e| match e.split_once("::") {
            Some((path, name)) => f.name == name && path_matches(rel, path),
            None => f.name == *e,
        })
    };

    // Mutators: by declared name, and by assignment to declared state.
    let mut mutators: Vec<(usize, String)> = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !ctx.file_in_scope(&ws.files[f.file]) {
            continue;
        }
        if mutator_fns.iter().any(|m| m == &f.name) {
            mutators.push((id, format!("`{}`", f.display())));
        }
    }
    for (fi, file) in ws.files.iter().enumerate() {
        if ws.fns_in_file(fi).is_empty() || !ctx.file_in_scope(file) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || !state_idents.iter().any(|s| s == &toks[i].text) {
                continue;
            }
            // `ident = …` (not `==`), or `&mut [self.]ident`.
            let assigned = toks.get(i + 1).is_some_and(|t| t.is_punct('='))
                && !toks.get(i + 2).is_some_and(|t| t.is_punct('='));
            let borrowed_mut = (i >= 1 && toks[i - 1].is_ident("mut"))
                || (i >= 3 && toks[i - 1].is_punct('.') && toks[i - 3].is_ident("mut"));
            if !assigned && !borrowed_mut {
                continue;
            }
            let Some(fn_id) = ws.enclosing(fi, i) else {
                continue;
            };
            let label = format!("`{}` (writes `{}`)", ws.fns[fn_id].display(), toks[i].text);
            if !mutators.iter().any(|(id, _)| *id == fn_id) {
                mutators.push((fn_id, label));
            }
        }
    }
    mutators.sort_by_key(|(id, _)| *id);
    mutators.dedup_by_key(|(id, _)| *id);

    // Reverse reachability: flag every undeclared root.
    let entries_text = if entry_points.is_empty() {
        "<none declared>".to_string()
    } else {
        entry_points.join(", ")
    };
    let mut flagged: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (mutator, what) in &mutators {
        if is_entry(*mutator) {
            continue;
        }
        // parent[f] = the callee one step closer to the mutator.
        let mut parent: Vec<Option<usize>> = vec![None; ws.fns.len()];
        let mut visited = BTreeSet::new();
        let mut queue = std::collections::VecDeque::from([*mutator]);
        visited.insert(*mutator);
        while let Some(f) = queue.pop_front() {
            let callers = ws.callers_of(f);
            if callers.is_empty() {
                if !is_entry(f) && flagged.insert((f, *mutator)) {
                    let mut chain = vec![ws.fns[f].display()];
                    let mut at = f;
                    while let Some(next) = parent[at] {
                        chain.push(ws.fns[next].display());
                        at = next;
                    }
                    let root = &ws.fns[f];
                    let root_file = root.file;
                    let line = root.line;
                    ctx.emit(
                        root_file,
                        line,
                        format!(
                            "{what} is phase-locked state but is reachable from \
                             undeclared root `{}` (chain: {}); route/lease/admission \
                             state may only move at phase-A quiescence — call it from \
                             a declared entry point ({entries_text}) or add this root \
                             to [rule.phase-discipline] entry_points",
                            ws.fns[f].display(),
                            chain.join(" → "),
                        ),
                    );
                }
                continue;
            }
            for &(caller, _) in callers {
                if is_entry(caller) || !visited.insert(caller) {
                    continue;
                }
                parent[caller] = Some(f);
                queue.push_back(caller);
            }
        }
    }
}
