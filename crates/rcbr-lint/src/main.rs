//! The `lint` binary: scan the workspace, print diagnostics, write the
//! JSON report, gate CI.
//!
//! ```text
//! cargo run -p rcbr-lint --              # report-only: print + JSON, exit 0
//! cargo run -p rcbr-lint -- --deny       # CI gate: exit 1 on any violation
//! cargo run -p rcbr-lint -- --explain barrier-discipline
//! cargo run -p rcbr-lint -- --list-rules
//! cargo run -p rcbr-lint -- --graph      # dump the workspace call graph
//! cargo run -p rcbr-lint -- --stats      # print call-graph/taint stats + wall time
//! ```
//!
//! `--time-budget-ms N` makes the run fail (exit 3) if the analysis wall
//! time exceeds `N` milliseconds — CI pins a generous budget so an
//! accidentally quadratic rule shows up as a red build, not a slow one.
//!
//! The workspace root is found by walking up from the current directory
//! to the first `lint.toml` (override with `--root <dir>`); the JSON
//! report lands in `<root>/results/lint_report.json` (override with
//! `--report <path>`, disable with `--no-report`).

use std::path::PathBuf;
use std::process::ExitCode;

use rcbr_lint::config::Config;
use rcbr_lint::rules::{rule_by_id, RULES};
use rcbr_lint::{find_root, run_lint_full};

struct Args {
    deny: bool,
    quiet: bool,
    no_report: bool,
    root: Option<PathBuf>,
    report: Option<PathBuf>,
    explain: Option<String>,
    list_rules: bool,
    graph: bool,
    stats: bool,
    time_budget_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        quiet: false,
        no_report: false,
        root: None,
        report: None,
        explain: None,
        list_rules: false,
        graph: false,
        stats: false,
        time_budget_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--quiet" | "-q" => args.quiet = true,
            "--no-report" => args.no_report = true,
            "--list-rules" => args.list_rules = true,
            "--graph" => args.graph = true,
            "--stats" => args.stats = true,
            "--time-budget-ms" => {
                let v = it.next().ok_or("--time-budget-ms needs a number")?;
                args.time_budget_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --time-budget-ms {v:?}"))?,
                );
            }
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?))
            }
            "--explain" => args.explain = Some(it.next().ok_or("--explain needs a rule id")?),
            "--help" | "-h" => {
                println!(
                    "rcbr-lint: determinism & safety linter for the RCBR workspace\n\n\
                     USAGE: lint [--deny] [--quiet] [--no-report] [--root DIR] \
                     [--report PATH] [--list-rules] [--explain RULE] [--graph] \
                     [--stats] [--time-budget-ms N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in RULES {
            println!("{:<20} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &args.explain {
        return match rule_by_id(id) {
            Some(r) => {
                println!("[{}] {}\n\n{}", r.id, r.summary, r.hazard);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("lint: unknown rule {id:?} (see --list-rules)");
                ExitCode::from(2)
            }
        };
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.clone().or_else(|| find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("lint: no lint.toml found walking up from {}", cwd.display());
            return ExitCode::from(2);
        }
    };
    let cfg_path = root.join("lint.toml");
    let cfg_text = match std::fs::read_to_string(&cfg_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lint: cannot read {}: {e}", cfg_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    let started = std::time::Instant::now();
    let (report, analysis) = match run_lint_full(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;

    if args.graph {
        print!("{}", analysis.workspace.dump());
    }

    if !args.quiet {
        for d in &report.violations {
            println!("{}", d.render());
        }
        let active = report.rules.len();
        println!(
            "lint: {} file(s), {} rule(s) active, {} violation(s), {} suppressed",
            report.files_scanned,
            active,
            report.violations.len(),
            report.suppressed
        );
    }

    if args.stats {
        println!(
            "lint: graph: {} function(s), {} call edge(s), {} unresolved call(s); \
             taint: {} seed(s), {} tainted function(s); analysis wall time {} ms",
            report.graph.functions,
            report.graph.call_edges,
            analysis.workspace.unresolved_calls,
            report.graph.taint_seeds,
            report.graph.tainted_functions,
            elapsed_ms
        );
    }

    if !args.no_report {
        let path = args
            .report
            .clone()
            .unwrap_or_else(|| root.join("results/lint_report.json"));
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("lint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!("lint: report written to {}", path.display());
        }
    }

    if let Some(budget) = args.time_budget_ms {
        if elapsed_ms > budget {
            eprintln!(
                "lint: analysis took {elapsed_ms} ms, over the --time-budget-ms {budget} \
                 — a rule has likely gone super-linear"
            );
            return ExitCode::from(3);
        }
        if !args.quiet {
            println!("lint: analysis wall time {elapsed_ms} ms (budget {budget} ms)");
        }
    }

    if args.deny && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
