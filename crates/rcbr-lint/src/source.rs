//! A lexed source file plus the line-level metadata rules need:
//! suppression comments, `#[cfg(test)]` regions, and crate attribution.

use crate::lexer::{lex, Comment, Token};

/// One workspace source file, ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// The owning crate's *directory* name (`rcbr-runtime`, …), or
    /// `workspace-root` for the facade's `src/`. Rule scopes in
    /// `lint.toml` use these names.
    pub crate_name: String,
    /// Under a `tests/`, `benches/`, or `examples/` directory.
    pub is_test_target: bool,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Raw lines for snippets (1-based access via [`SourceFile::snippet`]).
    pub lines: Vec<String>,
    /// First line of the file's `#[cfg(test)]` region, if any. The
    /// workspace convention is one test module at the end of the file, so
    /// everything at or past this line is treated as test code.
    pub cfg_test_line: Option<u32>,
    /// `(rule-id, line)` pairs silenced by `lint:allow` comments;
    /// rule-id `*` silences every rule.
    suppressions: Vec<(String, u32)>,
}

impl SourceFile {
    /// Lex and annotate `source`.
    pub fn new(
        rel_path: impl Into<String>,
        crate_name: impl Into<String>,
        is_test_target: bool,
        source: &str,
    ) -> Self {
        let lexed = lex(source);
        let cfg_test_line = find_cfg_test(&lexed.tokens);
        let suppressions = find_suppressions(&lexed.comments);
        Self {
            rel_path: rel_path.into(),
            crate_name: crate_name.into(),
            is_test_target,
            tokens: lexed.tokens,
            comments: lexed.comments,
            lines: source.lines().map(str::to_string).collect(),
            cfg_test_line,
            suppressions,
        }
    }

    /// Is `line` inside test code (a test target, or at/past the file's
    /// `#[cfg(test)]` module)?
    pub fn is_test_at(&self, line: u32) -> bool {
        self.is_test_target || self.cfg_test_line.is_some_and(|t| line >= t)
    }

    /// Is `rule` suppressed at `line`? A `// lint:allow(rule)` comment
    /// covers its own line and the next (so it can sit above the
    /// offending statement or trail it).
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|(r, l)| (r == rule || r == "*") && (line == *l || line == *l + 1))
    }

    /// The trimmed source text of a 1-based line.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Is there a comment containing `needle` on `line` or within the
    /// `lookback` lines above it? (Used for `// SAFETY:` justifications.)
    pub fn comment_near(&self, line: u32, lookback: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line + lookback >= line && c.line <= line && c.text.contains(needle))
    }
}

/// First line of a `#[cfg(test)]` attribute, if any.
fn find_cfg_test(tokens: &[Token]) -> Option<u32> {
    for w in tokens.windows(7) {
        if w[0].is_punct('#')
            && w[1].is_punct('[')
            && w[2].is_ident("cfg")
            && w[3].is_punct('(')
            && w[4].is_ident("test")
            && w[5].is_punct(')')
            && w[6].is_punct(']')
        {
            return Some(w[0].line);
        }
    }
    None
}

/// Collect `lint:allow(rule-a, rule-b)` suppressions from comments.
fn find_suppressions(comments: &[Comment]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            for rule in rest[..close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    out.push((rule.to_string(), c.end_line));
                }
            }
            rest = &rest[close..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_covers_own_and_next_line() {
        let f = SourceFile::new(
            "x.rs",
            "c",
            false,
            "// lint:allow(wall-clock)\nlet t = now();\nlet u = now();\n",
        );
        assert!(f.is_suppressed("wall-clock", 1));
        assert!(f.is_suppressed("wall-clock", 2));
        assert!(!f.is_suppressed("wall-clock", 3));
        assert!(!f.is_suppressed("other-rule", 2));
    }

    #[test]
    fn wildcard_suppression() {
        let f = SourceFile::new("x.rs", "c", false, "let t = now(); // lint:allow(*)\n");
        assert!(f.is_suppressed("anything", 1));
    }

    #[test]
    fn cfg_test_region() {
        let f = SourceFile::new(
            "x.rs",
            "c",
            false,
            "fn prod() {}\n#[cfg(test)]\nmod tests {}\n",
        );
        assert!(!f.is_test_at(1));
        assert!(f.is_test_at(2));
        assert!(f.is_test_at(3));
    }

    #[test]
    fn safety_comment_lookup() {
        let f = SourceFile::new(
            "x.rs",
            "c",
            false,
            "// SAFETY: the slice is live\nunsafe { go() }\n",
        );
        assert!(f.comment_near(2, 3, "SAFETY:"));
        assert!(!f.comment_near(2, 3, "JUSTIFICATION:"));
    }
}
