//! rcbr-lint: the in-tree determinism & safety linter.
//!
//! The runtime's headline invariant — the sharded signaling engine is
//! bit-identical to the sequential replay under every fault mode — is
//! *structural*: it survives only if nobody reads wall clocks, iterates
//! hash containers, races barrier windows, or lets the RM-cell codec
//! drift from its checksum. Runtime tests catch those failures hours
//! after the fact; this linter catches them at the source line, before a
//! test ever runs.
//!
//! Architecture (all in-tree, no dependencies — the build environment is
//! offline and the linter must never be able to break the build it
//! gates):
//!
//! * [`lexer`] — a small Rust tokenizer: identifiers, literals, and
//!   punctuation with line numbers; strings and comments can never
//!   produce identifier tokens, so rules match real code only.
//! * [`source`] — per-file metadata: `#[cfg(test)]` regions,
//!   `lint:allow(rule)` suppressions, `// SAFETY:` lookups.
//! * [`config`] — a minimal TOML-subset reader for `lint.toml`.
//! * [`rules`] — the registry: one table entry per rule; see
//!   `DESIGN.md §7` for the catalog and the how-to-add-a-rule recipe.
//! * [`diag`] — diagnostics and the canonical (sorted, byte-stable)
//!   human + JSON rendering.
//!
//! The `lint` binary scans the workspace, prints `file:line` diagnostics,
//! writes `results/lint_report.json`, and exits nonzero under `--deny`.

pub mod config;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod taint;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use config::Config;
use diag::{Diagnostic, GraphStats, LintReport, RuleSummary};
use graph::Workspace;
use source::SourceFile;
use taint::TaintSummary;

/// Everything one analysis pass produces: the call graph, the taint
/// summary, and the (canonically sortable) diagnostics.
pub struct Analysis {
    pub workspace: Workspace,
    pub taint: TaintSummary,
    pub violations: Vec<Diagnostic>,
    /// Per-rule `lint:allow` suppression counts.
    pub suppressed: std::collections::BTreeMap<&'static str, usize>,
}

/// The full pipeline over pre-lexed sources: per-file rules, then the
/// workspace call graph, then transitive taint and the graph rules.
/// Output is independent of the order of `files` — the workspace sorts
/// them by path before anything else looks at them.
pub fn analyze_sources(files: Vec<SourceFile>, cfg: &Config) -> Analysis {
    let ws = Workspace::build(files, cfg);
    let mut violations = Vec::new();
    let mut suppressed: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    for file in &ws.files {
        for (rule, n) in rules::check_file(file, cfg, &mut violations) {
            *suppressed.entry(rule).or_insert(0) += n;
        }
    }
    let (taint, taint_suppressed) = taint::check(&ws, cfg, &mut violations);
    for (rule, n) in taint_suppressed {
        *suppressed.entry(rule).or_insert(0) += n;
    }
    for (rule, n) in rules::check_graph(&ws, cfg, &mut violations) {
        *suppressed.entry(rule).or_insert(0) += n;
    }
    Analysis {
        workspace: ws,
        taint,
        violations,
        suppressed,
    }
}

/// Lint a single source text, as the file `rel_path` of `crate_name`.
/// Returns the diagnostics plus per-rule suppression counts. This is the
/// entry point the fixture tests drive directly. A single file is a
/// (small) workspace: graph rules and taint run over it too.
pub fn check_source(
    rel_path: &str,
    crate_name: &str,
    is_test_target: bool,
    source: &str,
    cfg: &Config,
) -> (
    Vec<Diagnostic>,
    std::collections::BTreeMap<&'static str, usize>,
) {
    let file = SourceFile::new(rel_path, crate_name, is_test_target, source);
    let analysis = analyze_sources(vec![file], cfg);
    (analysis.violations, analysis.suppressed)
}

/// Walk upward from `start` to the directory holding `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Classify a workspace-relative path into (crate directory name,
/// is-test-target).
fn classify(rel: &str) -> (String, bool) {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        _ => "workspace-root".to_string(),
    };
    let is_test = parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples" | "fixtures"));
    (crate_name, is_test)
}

/// Collect every `.rs` file under the workspace `root`, skipping `target`,
/// hidden directories, and the `lint.toml` `[lint] exclude` prefixes.
/// Sorted, so discovery order is deterministic.
pub fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<PathBuf>> {
    let excludes = cfg.list("lint", "exclude");
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            let rel = rel_path(root, &path);
            if excludes
                .iter()
                .any(|e| rel == *e || rel.starts_with(&format!("{e}/")))
            {
                continue;
            }
            let ty = entry.file_type()?;
            if ty.is_dir() {
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint an explicit file list (paths under `root`). The report is
/// canonical: independent of the order of `files`.
pub fn run_lint_files(root: &Path, cfg: &Config, files: &[PathBuf]) -> io::Result<LintReport> {
    Ok(run_lint_files_full(root, cfg, files)?.0)
}

/// Like [`run_lint_files`], but also returns the [`Analysis`] (the call
/// graph for `--graph`, the taint summary).
pub fn run_lint_files_full(
    root: &Path,
    cfg: &Config,
    files: &[PathBuf],
) -> io::Result<(LintReport, Analysis)> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = rel_path(root, path);
        let (crate_name, is_test) = classify(&rel);
        let source = fs::read_to_string(path)?;
        sources.push(SourceFile::new(&rel, &crate_name, is_test, &source));
    }
    let analysis = analyze_sources(sources, cfg);
    let rules = rules::RULES
        .iter()
        .map(|r| RuleSummary {
            id: r.id.to_string(),
            summary: r.summary.to_string(),
            violations: analysis
                .violations
                .iter()
                .filter(|d| d.rule == r.id)
                .count(),
            suppressed: analysis.suppressed.get(r.id).copied().unwrap_or(0),
        })
        .collect();
    let mut report = LintReport {
        files_scanned: files.len(),
        graph: GraphStats {
            functions: analysis.workspace.fns.len(),
            call_edges: analysis.workspace.edges.len(),
            taint_seeds: analysis.taint.seeds,
            tainted_functions: analysis.taint.tainted,
        },
        rules,
        violations: analysis.violations.clone(),
        suppressed: analysis.suppressed.values().sum(),
    };
    report.canonicalize();
    Ok((report, analysis))
}

/// Lint the whole workspace under `root`.
pub fn run_lint(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let files = collect_files(root, cfg)?;
    run_lint_files(root, cfg, &files)
}

/// Lint the whole workspace under `root`, returning the analysis too.
pub fn run_lint_full(root: &Path, cfg: &Config) -> io::Result<(LintReport, Analysis)> {
    let files = collect_files(root, cfg)?;
    run_lint_files_full(root, cfg, &files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/rcbr-runtime/src/engine.rs"),
            ("rcbr-runtime".to_string(), false)
        );
        assert_eq!(
            classify("crates/rcbr-net/tests/delta_resync.rs"),
            ("rcbr-net".to_string(), true)
        );
        assert_eq!(
            classify("src/lib.rs"),
            ("workspace-root".to_string(), false)
        );
        assert_eq!(
            classify("crates/rcbr-lint/tests/fixtures/wall_clock/trip.rs"),
            ("rcbr-lint".to_string(), true)
        );
    }
}
