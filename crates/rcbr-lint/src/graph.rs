//! The workspace call graph: a per-crate function table plus resolved
//! call edges, built on [`crate::lexer::fn_spans`].
//!
//! This is the symbol layer under the cross-function passes
//! ([`crate::taint`], `phase-discipline`, `counter-order`): line-local
//! token rules see one file at a time, but the hazards that survived to
//! PR 7 (the fuzzer's two real finds) were *interactions* — a helper two
//! hops away reading a clock, a mutator reachable from outside the
//! quiescence window. The graph makes those chains auditable.
//!
//! Name resolution is a deliberate heuristic, not rustc:
//!
//! * `Type::name(...)` and `Self::name(...)` resolve **only** through the
//!   impl/trait table — an unknown type (std's `Vec::new`,
//!   `Barrier::new`) resolves to nothing rather than to every `new` in
//!   the workspace;
//! * `.name(...)` method calls resolve to every known method of that
//!   name, same-crate candidates first (falling back to cross-crate only
//!   when the caller's crate has none) — an over-approximation, which is
//!   the safe direction for taint;
//! * bare `name(...)` calls resolve to free functions the same way;
//! * functions in binary targets (`src/bin/`, `src/main.rs`) are only
//!   callable from their own file — no other crate can link them;
//! * test functions (test targets and `#[cfg(test)]` regions) are
//!   excluded from the table entirely: the graph models production
//!   reachability.
//!
//! Everything is deterministic by construction: files are sorted by
//! path before ids are assigned, edges are sorted and deduplicated, and
//! no map with randomized iteration order is used anywhere.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::lexer::{fn_spans, TokKind, Token};
use crate::source::SourceFile;

/// One production function in the workspace.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range in the file's token stream (incl. braces).
    pub body_start: usize,
    pub body_end: usize,
    /// Lives in a binary target: callable only within its own file.
    pub is_bin: bool,
}

impl FnInfo {
    /// `Owner::name` for methods, `name` for free functions.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved call site: `caller` invokes `callee` at `line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallEdge {
    pub caller: usize,
    pub callee: usize,
    pub line: u32,
}

/// The whole-workspace symbol table and call graph.
#[derive(Debug)]
pub struct Workspace {
    /// Every scanned file, sorted by `rel_path` (ids below index into
    /// this order, so the graph is independent of discovery order).
    pub files: Vec<SourceFile>,
    /// Production functions of graph-eligible files, in (file, span)
    /// order.
    pub fns: Vec<FnInfo>,
    /// Resolved call edges, sorted by `(caller, line, callee)`, deduped.
    pub edges: Vec<CallEdge>,
    /// Call sites whose name resolved to no known function (std calls,
    /// constructors); kept for `--stats` plausibility checks.
    pub unresolved_calls: usize,
    /// Reverse adjacency: `callers[f]` lists `(caller, line)` pairs.
    callers: Vec<Vec<(usize, u32)>>,
    /// Function ids per file, for innermost-enclosing lookup.
    fns_by_file: Vec<Vec<usize>>,
}

/// Identifiers that look like calls but never are (keywords, the enum
/// constructors std injects into every scope).
const NON_CALL_IDENTS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "union", "unsafe", "use", "where",
    "while", "yield", "Some", "None", "Ok", "Err",
];

impl Workspace {
    /// Build the table and graph over `files`. Crates listed in
    /// `[graph] exclude_crates` (vendored shims) contribute no
    /// functions; their files are still carried for per-file rules.
    pub fn build(mut files: Vec<SourceFile>, cfg: &Config) -> Self {
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let excluded = cfg.list("graph", "exclude_crates");

        // Pass 1: the function table.
        let mut fns: Vec<FnInfo> = Vec::new();
        let mut fns_by_file: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
        for (fi, file) in files.iter().enumerate() {
            if excluded.iter().any(|c| c == &file.crate_name) {
                continue;
            }
            let impls = impl_spans(&file.tokens);
            let is_bin = file.rel_path.contains("/bin/") || file.rel_path.ends_with("src/main.rs");
            for span in fn_spans(&file.tokens) {
                let line = file.tokens[span.fn_tok].line;
                if file.is_test_at(line) {
                    continue;
                }
                let owner = impls
                    .iter()
                    .filter(|(_, s, e)| *s <= span.fn_tok && span.fn_tok < *e)
                    .min_by_key(|(_, s, e)| e - s)
                    .map(|(name, _, _)| name.clone());
                fns_by_file[fi].push(fns.len());
                fns.push(FnInfo {
                    file: fi,
                    name: span.name,
                    owner,
                    line,
                    body_start: span.body_start,
                    body_end: span.body_end,
                    is_bin,
                });
            }
        }

        // Resolution tables (candidate lists are in fn-id order, so every
        // lookup below is deterministic).
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            match &f.owner {
                Some(owner) => {
                    methods_by_name.entry(&f.name).or_default().push(id);
                    by_owner
                        .entry((owner.as_str(), f.name.as_str()))
                        .or_default()
                        .push(id);
                }
                None => free_by_name.entry(&f.name).or_default().push(id),
            }
        }

        // Pass 2: call sites and edges.
        let mut edges: Vec<CallEdge> = Vec::new();
        let mut unresolved = 0usize;
        for (fi, file) in files.iter().enumerate() {
            if fns_by_file[fi].is_empty() {
                continue;
            }
            let toks = &file.tokens;
            for i in 0..toks.len() {
                if toks[i].kind != TokKind::Ident
                    || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    || NON_CALL_IDENTS.contains(&toks[i].text.as_str())
                    || (i > 0 && toks[i - 1].is_ident("fn"))
                {
                    continue;
                }
                let Some(&caller) = fns_by_file[fi]
                    .iter()
                    .filter(|&&id| fns[id].body_start <= i && i < fns[id].body_end)
                    .min_by_key(|&&id| fns[id].body_end - fns[id].body_start)
                else {
                    continue; // top-level const expression or test code
                };
                let name = toks[i].text.as_str();
                let qualified = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
                let candidates: &[usize] = if qualified {
                    let qualifier = toks
                        .get(i.wrapping_sub(3))
                        .filter(|t| t.kind == TokKind::Ident);
                    match qualifier {
                        Some(q) if q.text == "Self" => fns[caller]
                            .owner
                            .as_deref()
                            .and_then(|o| by_owner.get(&(o, name)))
                            .map(Vec::as_slice)
                            .unwrap_or(&[]),
                        Some(q) if q.text.starts_with(char::is_uppercase) => by_owner
                            .get(&(q.text.as_str(), name))
                            .map(Vec::as_slice)
                            .unwrap_or(&[]),
                        // Lowercase qualifier: a module path to a free fn.
                        _ => free_by_name.get(name).map(Vec::as_slice).unwrap_or(&[]),
                    }
                } else if i > 0 && toks[i - 1].is_punct('.') {
                    methods_by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
                } else {
                    free_by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
                };
                // Binary-target functions are invisible outside their file;
                // everything else prefers the nearest scope: same file,
                // then same crate, then anywhere.
                let visible: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| !fns[id].is_bin || fns[id].file == fi)
                    .collect();
                let same_file: Vec<usize> = visible
                    .iter()
                    .copied()
                    .filter(|&id| fns[id].file == fi)
                    .collect();
                let same_crate: Vec<usize> = visible
                    .iter()
                    .copied()
                    .filter(|&id| files[fns[id].file].crate_name == file.crate_name)
                    .collect();
                let resolved = if !same_file.is_empty() {
                    &same_file
                } else if !same_crate.is_empty() {
                    &same_crate
                } else {
                    &visible
                };
                if resolved.is_empty() {
                    unresolved += 1;
                    continue;
                }
                for &callee in resolved {
                    edges.push(CallEdge {
                        caller,
                        callee,
                        line: toks[i].line,
                    });
                }
            }
        }
        edges.sort_by_key(|e| (e.caller, e.line, e.callee));
        edges.dedup();

        let mut callers: Vec<Vec<(usize, u32)>> = vec![Vec::new(); fns.len()];
        for e in &edges {
            callers[e.callee].push((e.caller, e.line));
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }

        Self {
            files,
            fns,
            edges,
            unresolved_calls: unresolved,
            callers,
            fns_by_file,
        }
    }

    /// `(caller, line)` pairs that invoke `fn_id`, sorted.
    pub fn callers_of(&self, fn_id: usize) -> &[(usize, u32)] {
        &self.callers[fn_id]
    }

    /// The innermost production function of `file_idx` whose body
    /// contains token index `tok`.
    pub fn enclosing(&self, file_idx: usize, tok: usize) -> Option<usize> {
        self.fns_by_file[file_idx]
            .iter()
            .copied()
            .filter(|&id| self.fns[id].body_start <= tok && tok < self.fns[id].body_end)
            .min_by_key(|&id| self.fns[id].body_end - self.fns[id].body_start)
    }

    /// Function ids defined in `file_idx`, in span order.
    pub fn fns_in_file(&self, file_idx: usize) -> &[usize] {
        &self.fns_by_file[file_idx]
    }

    /// `path:line Owner::name` — the anchor used in chain diagnostics.
    pub fn locate(&self, fn_id: usize) -> String {
        let f = &self.fns[fn_id];
        format!("{}:{} {}", self.files[f.file].rel_path, f.line, f.display())
    }

    /// The deterministic `--graph` debug dump: every function in id
    /// order with its outgoing edges.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# rcbr-lint call graph: {} function(s), {} edge(s), {} unresolved call(s)",
            self.fns.len(),
            self.edges.len(),
            self.unresolved_calls
        );
        let mut at = 0usize;
        for (id, f) in self.fns.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}:{} {}",
                self.files[f.file].rel_path,
                f.line,
                f.display()
            );
            while at < self.edges.len() && self.edges[at].caller == id {
                let e = &self.edges[at];
                let _ = writeln!(out, "  -> {} (line {})", self.locate(e.callee), e.line);
                at += 1;
            }
        }
        out
    }
}

/// `impl`/`trait` block spans: `(type name, body_start, body_end)` in
/// token indices. The type of `impl Trait for Type` is `Type`; generics,
/// paths, and `where` clauses are skipped.
fn impl_spans(tokens: &[Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_impl = tokens[i].is_ident("impl");
        let is_trait = tokens[i].is_ident("trait");
        if !is_impl && !is_trait {
            i += 1;
            continue;
        }
        let mut angle = 0i64;
        let mut nest = 0i64;
        let mut for_at: Option<usize> = None;
        let mut where_at: Option<usize> = None;
        let mut open = None;
        let mut j = i + 1;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if t.is_punct('(') || t.is_punct('[') {
                nest += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                nest -= 1;
            } else if angle == 0 && nest == 0 {
                if t.is_ident("for") {
                    for_at = Some(j);
                } else if t.is_ident("where") && where_at.is_none() {
                    where_at = Some(j);
                } else if t.is_punct('{') {
                    open = Some(j);
                    break;
                } else if t.is_punct(';') {
                    break;
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        // The self-type segment: after `for` if present, else after the
        // keyword; truncated at any `where` clause.
        let seg_start = for_at.map(|f| f + 1).unwrap_or(i + 1);
        let seg_end = where_at.filter(|w| *w > seg_start).unwrap_or(open);
        let name = if is_trait {
            tokens
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
        } else {
            let mut angle = 0i64;
            let mut last = None;
            for t in &tokens[seg_start..seg_end] {
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle = (angle - 1).max(0);
                } else if angle == 0 && t.kind == TokKind::Ident {
                    last = Some(t.text.clone());
                }
            }
            last
        };
        // Brace-match the body.
        let mut depth = 0i64;
        let mut k = open;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                depth += 1;
            } else if tokens[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        if let Some(name) = name {
            out.push((name, open, (k + 1).min(tokens.len())));
        }
        i = open + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        let files = sources
            .iter()
            .map(|(path, src)| SourceFile::new(*path, "rcbr-runtime", false, src))
            .collect();
        Workspace::build(files, &Config::parse("").unwrap())
    }

    fn edge_names(ws: &Workspace) -> Vec<(String, String)> {
        ws.edges
            .iter()
            .map(|e| (ws.fns[e.caller].display(), ws.fns[e.callee].display()))
            .collect()
    }

    #[test]
    fn free_fn_and_method_edges_resolve() {
        let ws = ws(&[(
            "crates/rcbr-runtime/src/a.rs",
            "struct S;\n\
             impl S {\n    fn step(&self) { helper(); }\n}\n\
             fn helper() {}\n\
             fn run(s: &S) { s.step(); }\n",
        )]);
        let edges = edge_names(&ws);
        assert!(edges.contains(&("S::step".into(), "helper".into())));
        assert!(edges.contains(&("run".into(), "S::step".into())));
    }

    #[test]
    fn qualified_calls_resolve_through_impl_table_only() {
        let ws = ws(&[(
            "crates/rcbr-runtime/src/a.rs",
            "struct S;\n\
             impl S {\n    fn new() -> S { S }\n}\n\
             fn a() { let _ = S::new(); }\n\
             fn b() { let _ = Vec::<u8>::with_capacity(4); let _ = String::new(); }\n",
        )]);
        let edges = edge_names(&ws);
        assert!(edges.contains(&("a".into(), "S::new".into())));
        // `String::new` must NOT fall back to S::new by bare name.
        assert!(!edges.contains(&("b".into(), "S::new".into())));
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let ws = ws(&[(
            "crates/rcbr-runtime/src/a.rs",
            "trait T { }\nstruct S;\n\
             impl T for S {\n    fn go(&self) { helper(); }\n}\n\
             fn helper() {}\n",
        )]);
        assert!(edge_names(&ws).contains(&("S::go".into(), "helper".into())));
    }

    #[test]
    fn test_regions_and_bin_targets_are_scoped_out() {
        let ws = ws(&[
            (
                "crates/rcbr-runtime/src/a.rs",
                "fn prod() { helper(); }\nfn helper() {}\n\
                 #[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n",
            ),
            (
                "crates/rcbr-runtime/src/bin/tool.rs",
                "fn helper() {}\nfn main() { helper(); }\n",
            ),
        ]);
        // The test fn contributes neither a node nor an edge.
        assert!(ws.fns.iter().all(|f| f.name != "t"));
        // Both `helper`s exist, but a.rs's call resolves only to its own
        // crate-visible helper, never the binary's.
        let hits: Vec<_> = edge_names(&ws)
            .into_iter()
            .filter(|(c, _)| c == "prod" || c == "main")
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn build_is_order_independent() {
        let a = ("crates/rcbr-runtime/src/a.rs", "fn one() { two(); }\n");
        let b = ("crates/rcbr-runtime/src/b.rs", "fn two() {}\n");
        let x = ws(&[a, b]);
        let y = ws(&[b, a]);
        assert_eq!(x.dump(), y.dump());
    }
}
