//! `lint.toml` — a minimal TOML-subset reader.
//!
//! The build environment is offline, so instead of a TOML crate this
//! parses exactly the subset the lint configuration uses:
//!
//! ```toml
//! [section.name]          # tables, dotted names allowed
//! key = "string"
//! flag = true
//! count = 16
//! list = ["a", "b"]       # string lists, may span multiple lines
//! # comments
//! ```
//!
//! Unknown syntax is a hard error with a line number — a config typo must
//! fail the lint run loudly, not silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// A configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<String>),
}

/// Parsed configuration: `section -> key -> value`. Sections and keys are
/// ordered (BTreeMap) so iteration — and therefore every report derived
/// from it — is deterministic.
#[derive(Debug, Default, Clone)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

/// A parse failure, with the 1-based line it happened on.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parse a configuration document.
    pub fn parse(src: &str) -> Result<Self, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("unterminated section header: {raw:?}"),
                })?;
                section = name.trim().to_string();
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let (key, rest) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got {raw:?}"),
            })?;
            let key = key.trim().to_string();
            let mut rest = rest.trim().to_string();
            // A list may continue over following lines until the closing
            // bracket.
            if rest.starts_with('[') {
                while !rest.contains(']') {
                    let (cont_idx, cont) = lines.next().ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!("unterminated list for key {key:?}"),
                    })?;
                    let _ = cont_idx;
                    rest.push(' ');
                    rest.push_str(strip_comment(cont).trim());
                }
            }
            let value = parse_value(&rest, lineno)?;
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key, value);
        }
        Ok(cfg)
    }

    /// All section names.
    pub fn sections(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(|s| s.as_str())
    }

    /// Whether the section exists at all.
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }

    /// Raw value lookup.
    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.sections.get(section)?.get(key)
    }

    /// String value, if present and a string.
    pub fn str_(&self, section: &str, key: &str) -> Option<&str> {
        match self.get(section, key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Integer value, if present and an integer.
    pub fn int(&self, section: &str, key: &str) -> Option<i64> {
        match self.get(section, key) {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Bool value with a default.
    pub fn bool_or(&self, section: &str, key: &str, default: bool) -> bool {
        match self.get(section, key) {
            Some(Value::Bool(v)) => *v,
            _ => default,
        }
    }

    /// String-list value; empty if absent. A bare string counts as a
    /// one-element list.
    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        match self.get(section, key) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ConfigError> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("unterminated list: {text:?}"),
        })?;
        let mut items = Vec::new();
        for item in split_list(inner) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item, lineno)? {
                Value::Str(s) => items.push(s),
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("lists may only hold strings, got {other:?}"),
                    })
                }
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("unterminated string: {text:?}"),
        })?;
        return Ok(Value::Str(
            inner.replace("\\\"", "\"").replace("\\\\", "\\"),
        ));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| ConfigError {
            line: lineno,
            message: format!("expected a string, integer, bool, or list, got {text:?}"),
        })
}

/// Split a list body on commas outside quotes.
fn split_list(inner: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '\\' if in_str => {
                cur.push(c);
                if let Some(n) = chars.next() {
                    cur.push(n);
                }
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        items.push(cur);
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let cfg = Config::parse(
            r#"
# top comment
[lint]
exclude = ["crates/serde", "target"] # trailing comment

[rule.wall-clock]
enabled = true
crates = [
    "rcbr-runtime",
    "rcbr-net",
]
total = 16
note = "a # inside a string"
"#,
        )
        .unwrap();
        assert_eq!(cfg.list("lint", "exclude"), vec!["crates/serde", "target"]);
        assert!(cfg.bool_or("rule.wall-clock", "enabled", false));
        assert_eq!(
            cfg.list("rule.wall-clock", "crates"),
            vec!["rcbr-runtime", "rcbr-net"]
        );
        assert_eq!(cfg.int("rule.wall-clock", "total"), Some(16));
        assert_eq!(
            cfg.str_("rule.wall-clock", "note"),
            Some("a # inside a string")
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Config::parse("[lint]\nkey value\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
