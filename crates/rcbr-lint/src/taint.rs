//! Transitive nondeterminism taint over the call graph.
//!
//! The line-local rules (`wall-clock`, `unordered-iter`, `ptr-identity`)
//! flag the *source line* of a hazard. This pass flags everything that
//! can **reach** one: each seed taints its enclosing function, taint
//! propagates caller-ward along [`crate::graph::Workspace`] edges, and
//! every in-scope call site whose callee is tainted gets a diagnostic
//! carrying the full chain down to the seed
//! (`worker → helper → Instant::now`).
//!
//! Propagation stops at **sanctioned boundaries**:
//!
//! * functions whose name starts with a `[taint] boundary_fn_prefixes`
//!   prefix (`snapshot*` barrier reads, `reduce_*` ordered reductions);
//! * functions in a seed rule's `allow_files` (the `WallTimer` file for
//!   `wall-clock`) — the audited escape hatches stay escape hatches at
//!   any call depth.
//!
//! Diagnostics are emitted under the *seeding rule's* id, so the scoping
//! (`crates`, `allow_files`) and `lint:allow` machinery users already
//! know keeps working; a chain into a tainted helper from an unscoped
//! crate (the bench binaries) is tracked but not flagged.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::graph::Workspace;
use crate::lexer::{TokKind, Token};
use crate::rules::{rule_by_id, rule_in_scope};

/// Seed-detection outcome for the report's graph stats.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaintSummary {
    /// Nondeterminism source sites found in production functions.
    pub seeds: usize,
    /// Functions carrying taint (seeds plus transitive callers, minus
    /// sanctioned boundaries), across all categories.
    pub tainted: usize,
}

/// One nondeterminism source site.
struct Seed {
    fn_id: usize,
    rule: &'static str,
    /// What the chain terminates in (`Instant::now`, `HashMap`, …).
    label: &'static str,
}

/// How a function became tainted: through which callee (None = it holds
/// the seed itself), ending in which source label.
#[derive(Clone)]
struct Trace {
    via: Option<usize>,
    label: &'static str,
}

/// Run the taint pass, appending diagnostics to `out`. Returns the
/// summary plus per-rule `lint:allow` suppression counts.
pub fn check(
    ws: &Workspace,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) -> (TaintSummary, BTreeMap<&'static str, usize>) {
    let prefixes = {
        let p = cfg.list("taint", "boundary_fn_prefixes");
        if p.is_empty() {
            vec!["snapshot".to_string(), "reduce_".to_string()]
        } else {
            p
        }
    };
    let seeds = find_seeds(ws);
    let mut suppressed: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut tainted_union: BTreeSet<usize> = BTreeSet::new();

    let categories: BTreeSet<&'static str> = seeds.iter().map(|s| s.rule).collect();
    for rule_id in categories {
        let Some(rule) = rule_by_id(rule_id) else {
            continue;
        };
        let allow = cfg.list(&format!("rule.{rule_id}"), "allow_files");
        let boundary = |fn_id: usize| -> bool {
            let f = &ws.fns[fn_id];
            prefixes.iter().any(|p| f.name.starts_with(p.as_str()))
                || allow
                    .iter()
                    .any(|a| path_matches(&ws.files[f.file].rel_path, a))
        };

        // BFS caller-ward from the seeds; first (shortest) trace wins,
        // ties resolved by sorted seed/caller order.
        let mut tainted: BTreeMap<usize, Trace> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for s in seeds.iter().filter(|s| s.rule == rule_id) {
            if !boundary(s.fn_id) && !tainted.contains_key(&s.fn_id) {
                tainted.insert(
                    s.fn_id,
                    Trace {
                        via: None,
                        label: s.label,
                    },
                );
                queue.push_back(s.fn_id);
            }
        }
        while let Some(t) = queue.pop_front() {
            let label = tainted[&t].label;
            for &(caller, _) in ws.callers_of(t) {
                if tainted.contains_key(&caller) || boundary(caller) {
                    continue;
                }
                tainted.insert(
                    caller,
                    Trace {
                        via: Some(t),
                        label,
                    },
                );
                queue.push_back(caller);
            }
        }
        tainted_union.extend(tainted.keys().copied());

        // Flag every in-scope call site into tainted territory.
        let mut emitted: BTreeSet<(usize, u32, usize)> = BTreeSet::new();
        for e in &ws.edges {
            let Some(trace_head) = tainted.get(&e.callee) else {
                continue;
            };
            let caller = &ws.fns[e.caller];
            let file = &ws.files[caller.file];
            if boundary(e.caller) || !rule_in_scope(rule, file, cfg) {
                continue;
            }
            if !emitted.insert((caller.file, e.line, e.callee)) {
                continue;
            }
            if file.is_suppressed(rule_id, e.line) {
                *suppressed.entry(rule_id).or_insert(0) += 1;
                continue;
            }
            let chain = render_chain(ws, &tainted, e.caller, e.callee, trace_head.label);
            out.push(Diagnostic {
                rule: rule_id.to_string(),
                path: file.rel_path.clone(),
                line: e.line,
                message: format!(
                    "call chain reaches {}: {chain} — every function on this chain \
                     inherits the nondeterminism; route it through a sanctioned \
                     boundary (snapshot_*/reduce_*/the rule's allow_files) or derive \
                     the value from deterministic state",
                    trace_head.label
                ),
                snippet: file.snippet(e.line),
            });
        }
    }

    (
        TaintSummary {
            seeds: seeds.len(),
            tainted: tainted_union.len(),
        },
        suppressed,
    )
}

/// `caller → callee → … → seed-label`.
fn render_chain(
    ws: &Workspace,
    tainted: &BTreeMap<usize, Trace>,
    caller: usize,
    callee: usize,
    label: &str,
) -> String {
    let mut names = vec![ws.fns[caller].display(), ws.fns[callee].display()];
    let mut at = callee;
    while let Some(next) = tainted.get(&at).and_then(|t| t.via) {
        names.push(ws.fns[next].display());
        at = next;
    }
    names.push(label.to_string());
    names.join(" → ")
}

/// Scan every production function for the nondeterminism sources the
/// line-local rules define (the patterns must stay in lockstep with
/// `rules/wall_clock.rs`, `rules/unordered_iter.rs`,
/// `rules/ptr_identity.rs`).
fn find_seeds(ws: &Workspace) -> Vec<Seed> {
    let mut seeds = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if ws.fns_in_file(fi).is_empty() {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let hit: Option<(&'static str, &'static str)> = seed_at(toks, i);
            let Some((rule, label)) = hit else { continue };
            let Some(fn_id) = ws.enclosing(fi, i) else {
                continue;
            };
            // One seed per (fn, rule, label) is enough to taint it.
            if !seeds
                .iter()
                .any(|s: &Seed| s.fn_id == fn_id && s.rule == rule && s.label == label)
            {
                seeds.push(Seed { fn_id, rule, label });
            }
        }
    }
    seeds
}

/// Is token `i` the head of a nondeterminism-source pattern?
fn seed_at(toks: &[Token], i: usize) -> Option<(&'static str, &'static str)> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        // `as *const` / `as *mut` pointer casts.
        if t.is_punct('*')
            && i > 0
            && toks[i - 1].is_ident("as")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("const") || n.is_ident("mut"))
        {
            return Some(("ptr-identity", "as *const"));
        }
        return None;
    }
    let follows_path = |name: &str| {
        toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident(name))
    };
    match t.text.as_str() {
        "Instant" if follows_path("now") => Some(("wall-clock", "Instant::now")),
        "SystemTime" => Some(("wall-clock", "SystemTime")),
        "thread_rng" | "ThreadRng" => Some(("wall-clock", "thread_rng")),
        "rand" if follows_path("random") => Some(("wall-clock", "rand::random")),
        "HashMap" => Some(("unordered-iter", "HashMap")),
        "HashSet" => Some(("unordered-iter", "HashSet")),
        "ptr" if follows_path("eq") => Some(("ptr-identity", "ptr::eq")),
        _ => None,
    }
}

/// Component-aligned path-suffix match (same semantics as rule scoping).
fn path_matches(rel_path: &str, entry: &str) -> bool {
    rel_path == entry
        || rel_path
            .strip_suffix(entry)
            .is_some_and(|prefix| prefix.ends_with('/'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn analyze(sources: &[(&str, &str)], cfg: &str) -> Vec<Diagnostic> {
        let files = sources
            .iter()
            .map(|(p, s)| SourceFile::new(*p, "rcbr-runtime", false, s))
            .collect();
        let cfg = Config::parse(cfg).unwrap();
        let ws = Workspace::build(files, &cfg);
        let mut out = Vec::new();
        check(&ws, &cfg, &mut out);
        out
    }

    #[test]
    fn two_hop_chain_is_flagged_with_full_chain() {
        let diags = analyze(
            &[
                (
                    "crates/rcbr-runtime/src/engine.rs",
                    "pub fn drive() { mid(); }\n",
                ),
                (
                    "crates/rcbr-runtime/src/mid.rs",
                    "pub fn mid() { deep(); }\n",
                ),
                (
                    "crates/rcbr-runtime/src/deep.rs",
                    "pub fn deep() -> std::time::Instant { std::time::Instant::now() }\n",
                ),
            ],
            "",
        );
        let hit = diags
            .iter()
            .find(|d| d.path.ends_with("engine.rs"))
            .expect("engine call site flagged");
        assert!(
            hit.message.contains("drive → mid → deep → Instant::now"),
            "{}",
            hit.message
        );
    }

    #[test]
    fn boundaries_stop_propagation() {
        let diags = analyze(
            &[
                (
                    "crates/rcbr-runtime/src/engine.rs",
                    "pub fn drive() -> f64 { reduce_total() }\n",
                ),
                (
                    "crates/rcbr-runtime/src/mid.rs",
                    "pub fn reduce_total() -> f64 { wall() }\n",
                ),
                (
                    "crates/rcbr-runtime/src/wall.rs",
                    "pub fn wall() -> f64 { let _ = std::time::Instant::now(); 0.0 }\n",
                ),
            ],
            "",
        );
        assert!(
            diags.iter().all(|d| !d.path.ends_with("engine.rs")),
            "{diags:#?}"
        );
    }
}
