//! Diagnostics and the machine-readable report.
//!
//! Diagnostics are plain data; the report sorts them by
//! `(path, line, rule)` before rendering so the human output and the JSON
//! in `results/lint_report.json` are byte-identical across runs and across
//! file-discovery orders — the linter holds itself to the same determinism
//! bar it enforces.

use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`wall-clock`, `barrier-discipline`, …).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Diagnostic {
    /// The sort key that fixes report order.
    fn key(&self) -> (&str, u32, &str) {
        (&self.path, self.line, &self.rule)
    }

    /// `file:line: [rule] message` — the human rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        );
        if !self.snippet.is_empty() {
            let _ = write!(s, "\n    | {}", self.snippet);
        }
        s
    }
}

/// Per-rule tallies for the report header.
#[derive(Debug, Clone)]
pub struct RuleSummary {
    pub id: String,
    pub summary: String,
    pub violations: usize,
    pub suppressed: usize,
}

/// Call-graph statistics for the report's `graph` block — coverage
/// evidence for the cross-function passes (a report claiming "clean" is
/// only as strong as the graph it analyzed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Production functions in the workspace graph.
    pub functions: usize,
    /// Resolved call edges between them.
    pub call_edges: usize,
    /// Nondeterminism source sites that seeded taint.
    pub taint_seeds: usize,
    /// Functions carrying taint (seeds + transitive callers, minus
    /// sanctioned boundaries).
    pub tainted_functions: usize,
}

/// The complete result of a lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Files lexed and checked.
    pub files_scanned: usize,
    /// Call-graph coverage statistics.
    pub graph: GraphStats,
    /// Every active rule, in registry order.
    pub rules: Vec<RuleSummary>,
    /// Violations sorted by `(path, line, rule)`.
    pub violations: Vec<Diagnostic>,
    /// Diagnostics silenced by `// lint:allow(rule)` comments.
    pub suppressed: usize,
}

impl LintReport {
    /// Sort violations into canonical order. Must be called before
    /// rendering; `run_lint` does this.
    pub fn canonicalize(&mut self) {
        self.violations.sort_by(|a, b| a.key().cmp(&b.key()));
    }

    /// Is the workspace clean?
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the JSON report. Hand-rolled (the linter is dependency-free
    /// by design) with sorted keys and no floats, so output is canonical.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"clean\": {},", self.clean());
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            out,
            "  \"graph\": {{\"call_edges\": {}, \"functions\": {}, \"taint_seeds\": {}, \
             \"tainted_functions\": {}}},",
            self.graph.call_edges,
            self.graph.functions,
            self.graph.taint_seeds,
            self.graph.tainted_functions
        );
        out.push_str("  \"rules\": [\n");
        for (i, r) in self.rules.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": {}, \"summary\": {}, \"violations\": {}, \"suppressed\": {}}}",
                json_str(&r.id),
                json_str(&r.summary),
                r.violations,
                r.suppressed
            );
            out.push_str(if i + 1 < self.rules.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"violations\": [\n");
        for (i, d) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
                json_str(&d.rule),
                json_str(&d.path),
                d.line,
                json_str(&d.message),
                json_str(&d.snippet)
            );
            out.push_str(if i + 1 < self.violations.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON-escape a string.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule: rule.into(),
            path: path.into(),
            line,
            message: "m".into(),
            snippet: "s".into(),
        }
    }

    #[test]
    fn canonical_order_is_path_line_rule() {
        let mut r = LintReport {
            files_scanned: 0,
            graph: GraphStats::default(),
            rules: Vec::new(),
            violations: vec![d("b", "z.rs", 1), d("a", "a.rs", 9), d("a", "a.rs", 2)],
            suppressed: 0,
        };
        r.canonicalize();
        let order: Vec<(String, u32)> = r
            .violations
            .iter()
            .map(|v| (v.path.clone(), v.line))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2),
                ("a.rs".to_string(), 9),
                ("z.rs".to_string(), 1)
            ]
        );
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }
}
