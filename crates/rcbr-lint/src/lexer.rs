//! A small, line-aware Rust tokenizer.
//!
//! This is not a full Rust lexer — it is exactly enough to let the rules
//! in [`crate::rules`] match token *sequences* (`Instant :: now`,
//! `. load (`, `buf [ 0 .. 4 ]`) without false positives from string
//! literals, comments, or doc examples. The properties the rules rely on:
//!
//! * identifiers, integer literals, and punctuation come out as separate
//!   tokens with 1-based line numbers;
//! * the *contents* of string/char literals and comments never appear as
//!   identifier tokens (so `"HashMap"` in a message cannot trip the
//!   unordered-iteration rule);
//! * comments are collected separately with their line spans, so rules
//!   can look for `// SAFETY:` justifications and `lint:allow(...)`
//!   suppressions;
//! * nested block comments, raw strings (`r#"…"#`), byte strings, raw
//!   identifiers, lifetimes-vs-char-literals, and numeric suffixes are
//!   handled well enough that real workspace sources lex losslessly.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// An integer literal; its value (when decimal and in range) is in
    /// [`Token::int`].
    Int,
    /// A float literal.
    Float,
    /// A string, byte-string, or char literal (contents dropped).
    Str,
    /// A lifetime (`'a`).
    Lifetime,
    /// A single punctuation character (compound operators arrive as a
    /// sequence: `::` is `:` `:`, `..` is `.` `.`).
    Punct,
}

/// One token, with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Identifier text or the punctuation character; empty for literals.
    pub text: String,
    /// Decimal value of an [`TokKind::Int`] token (0 if unparseable).
    pub int: u64,
    pub line: u32,
}

impl Token {
    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// A comment (line or block), with the lines it spans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Raw comment text including the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never panics; on malformed input it degrades to
/// treating bytes as punctuation, which at worst makes a rule miss — it
/// cannot crash the lint pass.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                // Rust block comments nest.
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    end_line: cur.line,
                    text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    int: 0,
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident with
                // no closing quote right after the first char.
                let is_lifetime = cur
                    .peek_at(1)
                    .is_some_and(|c| is_ident_start(c) && c != b'\\')
                    && cur.peek_at(2) != Some(b'\'');
                if is_lifetime {
                    cur.bump(); // '
                    let start = cur.pos;
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                        int: 0,
                        line,
                    });
                } else {
                    cur.bump(); // opening '
                    if cur.peek() == Some(b'\\') {
                        cur.bump();
                        cur.bump(); // the escaped char
                    } else {
                        cur.bump();
                    }
                    if cur.peek() == Some(b'\'') {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        int: 0,
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                let (kind, value) = lex_number(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text: String::new(),
                    int: value,
                    line,
                });
            }
            _ if is_ident_start(b) => {
                // Raw strings / byte strings / raw identifiers first.
                if (b == b'r' || b == b'b') && lex_maybe_raw_or_byte_string(&mut cur) {
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        int: 0,
                        line,
                    });
                    continue;
                }
                let start = cur.pos;
                // `r#ident` raw identifier: skip the prefix, keep the name.
                if b == b'r'
                    && cur.peek_at(1) == Some(b'#')
                    && cur.peek_at(2).is_some_and(is_ident_start)
                {
                    cur.bump();
                    cur.bump();
                }
                let name_start = if cur.pos > start { cur.pos } else { start };
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&cur.src[name_start..cur.pos]).into_owned(),
                    int: 0,
                    line,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    int: 0,
                    line,
                });
            }
        }
    }
    out
}

/// Consume a `"…"` string literal (cursor on the opening quote).
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening "
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// If the cursor sits on `r"`, `r#"`, `b"`, `br"`, `br#"`, or `b'`,
/// consume the whole literal and return true.
fn lex_maybe_raw_or_byte_string(cur: &mut Cursor<'_>) -> bool {
    let b0 = cur.peek();
    let (prefix_len, rest) = match b0 {
        Some(b'r') => (1, 1),
        Some(b'b') if cur.peek_at(1) == Some(b'r') => (2, 2),
        Some(b'b') => (1, 1),
        _ => return false,
    };
    let _ = rest;
    // Count `#` marks after the prefix.
    let mut hashes = 0usize;
    while cur.peek_at(prefix_len + hashes) == Some(b'#') {
        hashes += 1;
    }
    let raw = prefix_len > 1 || b0 == Some(b'r');
    match cur.peek_at(prefix_len + hashes) {
        Some(b'"') if raw || hashes == 0 => {}
        Some(b'\'') if b0 == Some(b'b') && hashes == 0 => {
            // Byte char literal `b'x'`.
            for _ in 0..prefix_len {
                cur.bump();
            }
            cur.bump(); // '
            if cur.peek() == Some(b'\\') {
                cur.bump();
            }
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            return true;
        }
        _ => return false,
    }
    // A raw string with N hashes ends at `"` + N hashes; a plain byte
    // string (b"…") ends at an unescaped quote.
    for _ in 0..(prefix_len + hashes) {
        cur.bump();
    }
    cur.bump(); // opening "
    if b0 == Some(b'b') && hashes == 0 && prefix_len == 1 {
        while let Some(c) = cur.bump() {
            match c {
                b'\\' => {
                    cur.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        return true;
    }
    loop {
        match cur.bump() {
            Some(b'"') => {
                let mut n = 0;
                while n < hashes && cur.peek() == Some(b'#') {
                    cur.bump();
                    n += 1;
                }
                if n == hashes {
                    return true;
                }
            }
            Some(_) => {}
            None => return true,
        }
    }
}

/// Consume a numeric literal (cursor on the first digit).
fn lex_number(cur: &mut Cursor<'_>) -> (TokKind, u64) {
    let start = cur.pos;
    let mut is_float = false;
    // Radix prefix?
    if cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        )
    {
        cur.bump();
        cur.bump();
        while cur
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
        return (TokKind::Int, 0);
    }
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    // A fractional part — but not the start of a `..` range and not a
    // method call (`1.max(2)`).
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e') | Some(b'E'))
        && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek_at(1), Some(b'+') | Some(b'-'))
                && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
    {
        is_float = true;
        cur.bump();
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    // Type suffix (`u64`, `f64`, `usize`…).
    let digits_end = cur.pos;
    while cur.peek().is_some_and(is_ident_continue) {
        if matches!(cur.peek(), Some(b'f')) {
            is_float = true;
        }
        cur.bump();
    }
    if is_float {
        return (TokKind::Float, 0);
    }
    let text: String = String::from_utf8_lossy(&cur.src[start..digits_end])
        .chars()
        .filter(|c| *c != '_')
        .collect();
    (TokKind::Int, text.parse().unwrap_or(0))
}

/// A function's span in the token stream: `tokens[body_start..body_end]`
/// is the body including both braces.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Index of the `fn` keyword token.
    pub fn_tok: usize,
    /// Index of the opening `{`.
    pub body_start: usize,
    /// Index one past the closing `}`.
    pub body_end: usize,
}

/// Locate every `fn name … { … }` in the token stream (including nested
/// ones). Bodies are found by brace matching from the first `{` after the
/// signature; `where` clauses and return types are skipped correctly
/// because struct-literal braces cannot appear in a signature.
pub fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && i + 1 < tokens.len() && tokens[i + 1].kind == TokKind::Ident
        {
            let name = tokens[i + 1].text.clone();
            // Find the body's opening brace; a `;` first means a trait or
            // extern declaration with no body. Both are only meaningful at
            // bracket depth 0: `[u8; N]` in a signature contains a `;`,
            // and `[T; { N }]` a brace, that end nothing.
            let mut j = i + 2;
            let mut body = None;
            let mut nesting = 0i64;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    nesting += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    nesting -= 1;
                } else if nesting == 0 && t.is_punct('{') {
                    body = Some(j);
                    break;
                } else if nesting == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                let mut depth = 0i64;
                let mut k = open;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        depth += 1;
                    } else if tokens[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                spans.push(FnSpan {
                    name,
                    fn_tok: i,
                    body_start: open,
                    body_end: (k + 1).min(tokens.len()),
                });
            }
        }
        i += 1;
    }
    spans
}

/// The name of the innermost function whose body contains token `idx`.
pub fn enclosing_fn(spans: &[FnSpan], idx: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| s.body_start <= idx && idx < s.body_end)
        .min_by_key(|s| s.body_end - s.body_start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_strings_and_comments_separate() {
        let lexed = lex(r##"
// HashMap in a comment
fn f() {
    let s = "HashMap::new()";
    let r = r#"Instant::now"#;
    let m = BTreeMap::new(); // trailing
}
"##);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"BTreeMap"));
        assert!(!idents.contains(&"HashMap"));
        assert!(!idents.contains(&"Instant"));
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let esc = '\\n'; }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn int_values_and_ranges() {
        let lexed = lex("let x = &buf[8..16];");
        let ints: Vec<u64> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.int)
            .collect();
        assert_eq!(ints, vec![8, 16]);
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 4)
            ]
        );
    }

    #[test]
    fn fn_spans_nest() {
        let lexed = lex("fn outer() { fn inner() { x.load(); } }");
        let spans = fn_spans(&lexed.tokens);
        assert_eq!(spans.len(), 2);
        let load_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("load"))
            .unwrap();
        assert_eq!(enclosing_fn(&spans, load_idx).unwrap().name, "inner");
    }

    #[test]
    fn fn_span_signature_with_array_semicolon() {
        // The `;` inside `[u8; 16]` must not read as "no body".
        let lexed = lex("pub fn encode(&self) -> [u8; 16] { [0; 16] }");
        let spans = fn_spans(&lexed.tokens);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "encode");
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
    }
}
