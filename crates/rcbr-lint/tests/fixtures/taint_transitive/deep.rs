// Fixture: the seed. `sample` reads the wall clock, tainting itself and
// (transitively) everything that can reach it.

pub fn sample() -> u64 {
    let t = std::time::Instant::now(); // seed: wall-clock
    t.elapsed().as_nanos() as u64
}
