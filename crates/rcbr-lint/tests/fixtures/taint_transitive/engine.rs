// Fixture: the top of a three-hop chain into a wall-clock read
// (`drive → plan → sample → Instant::now`), plus a sanctioned path
// through a snapshot_* boundary that must stay clean.

pub fn drive() -> u64 {
    plan() // trip: transitively reaches Instant::now two files away
}

pub fn tally() -> u64 {
    snapshot_total() // ok: the snapshot_* boundary stops taint
}
