// Fixture: the middle hop. `plan` forwards taint; `snapshot_total` is a
// sanctioned boundary and absorbs it.

pub fn plan() -> u64 {
    sample() // trip: calls into tainted territory
}

pub fn snapshot_total() -> u64 {
    sample()
}
