// Fixture: near-misses for `float-sort` — total_cmp comparators and a
// partial_cmp outside any sort sink must not trip.

fn order(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
}

fn by_key(v: &mut Vec<(u64, f64)>) {
    v.sort_by_key(|e| e.0);
}

fn compare(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    // partial_cmp on its own (not feeding a comparator sink) is fine.
    a.partial_cmp(&b)
}
