// Fixture: partial_cmp inside sort/min/max sinks must trip `float-sort`.

fn order(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // trip
}

fn best(v: &[f64]) -> Option<&f64> {
    v.iter().max_by(|a, b| a.partial_cmp(b).expect("finite")) // trip
}
