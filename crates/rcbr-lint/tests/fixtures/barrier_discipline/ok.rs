// Fixture: near-misses for `barrier-discipline` — loads inside a
// snapshot_* helper are the sanctioned pattern, and non-atomic `load`
// identifiers (no dot) must not trip.

fn snapshot_drain(counters: &Counters) -> (bool, u64) {
    (
        counters.in_flight.load(Ordering::Relaxed) == 0,
        counters.completed.load(Ordering::Relaxed),
    )
}

fn load(x: u64) -> u64 {
    x
}
