// Fixture: a raw atomic load outside a snapshot_* helper must trip
// `barrier-discipline`.

fn worker(counters: &Counters) -> bool {
    counters.in_flight.load(Ordering::Relaxed) == 0 // trip
}
