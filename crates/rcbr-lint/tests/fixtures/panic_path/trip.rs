// Fixture: every construct here must trip `panic-path`.

fn hot(x: Option<u32>) -> u32 {
    x.unwrap() // trip: bare unwrap
}

fn boom() {
    panic!("worker died"); // trip: panic!
}

fn later() {
    todo!() // trip: todo!
}

fn silent(x: Option<u32>) -> u32 {
    x.expect("") // trip: empty-message expect
}

fn raw(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) } // trip: unchecked indexing
}
