// Fixture: near-misses for `panic-path` — documented-invariant expects,
// non-panicking combinators, and messaged unreachable! must not trip.

fn documented(x: Option<u32>) -> u32 {
    x.expect("VC is routed through this switch")
}

fn defaulted(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

fn chained(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 7)
}

fn cold(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!("rollback cells are never corrupted"),
    }
}
