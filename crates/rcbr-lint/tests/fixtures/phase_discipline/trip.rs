// Fixture: phase-locked mutators reached from undeclared roots. The
// test config declares `worker` as the only quiescence entry point,
// `expire_leases` as a mutator name, and `route_state` as phase-locked
// state — neither root below is `worker`.

pub struct Leases;

impl Leases {
    pub fn expire_leases(&mut self) {}
}

pub struct Vc {
    pub route_state: u32,
}

// trip: `rogue` reaches the lease sweep but is not a declared entry.
pub fn rogue(l: &mut Leases) {
    l.expire_leases();
}

// trip: a RouteState write whose only root is this undeclared function.
pub fn sneak(vc: &mut Vc) {
    vc.route_state = 3;
}
