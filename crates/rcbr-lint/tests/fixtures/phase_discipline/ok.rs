// Near-miss: the same mutators and state writes as trip.rs, but every
// path to them starts at the declared `worker` entry point — the
// quiescence discipline holds.

pub struct Leases;

impl Leases {
    pub fn expire_leases(&mut self) {}
}

pub struct Vc {
    pub route_state: u32,
}

// A helper on the sanctioned path: its only caller is `worker`.
pub fn apply_final(vc: &mut Vc) {
    vc.route_state = 3;
}

pub fn worker(l: &mut Leases, vc: &mut Vc) {
    l.expire_leases();
    apply_final(vc);
}
