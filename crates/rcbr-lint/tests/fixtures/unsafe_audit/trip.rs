// Fixture: unsafe without a // SAFETY: justification must trip
// `unsafe-audit` (and any unsafe at all trips in forbid_crates).

fn reinterpret(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) } // trip: no SAFETY comment
}
