// Fixture: near-misses for `unsafe-audit` — a justified unsafe (in a
// shim crate) and the word in strings/comments must not trip.

fn reinterpret(x: u64) -> f64 {
    // SAFETY: u64 and f64 have the same size and any bit pattern is a
    // valid f64; this is exactly f64::from_bits.
    unsafe { std::mem::transmute(x) }
}

fn describe() -> &'static str {
    "unsafe is banned in product crates"
}
