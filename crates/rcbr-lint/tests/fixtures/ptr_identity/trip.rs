// Fixture: pointer-identity comparisons must trip `ptr-identity`.

fn same_switch(a: &u32, b: &u32) -> bool {
    std::ptr::eq(a, b) // trip: ptr::eq
}

fn addr(a: &u32) -> usize {
    a as *const u32 as usize // trip: as *const
}
