// Fixture: near-misses for `ptr-identity` — stable-id equality and
// multiplication by a dereferenced value must not trip.

fn same_vci(a: u32, b: u32) -> bool {
    a == b
}

fn scale(x: &f64, k: f64) -> f64 {
    // `*` as deref/multiply, not `as *const`.
    *x * k
}
