// Fixture: near-misses for `wall-clock` — none of these may trip.
// "Instant::now" in a string or comment is not a token; an `instant`
// local is not the type; the logical superstep clock is the sanctioned
// time source.

fn logical_clock(superstep: u64) -> u64 {
    superstep + 1
}

fn describe() -> &'static str {
    "never call Instant::now or SystemTime in the runtime"
}

fn shadowed() {
    let instant = 3u64; // lowercase ident, not the type
    let _ = instant;
}
