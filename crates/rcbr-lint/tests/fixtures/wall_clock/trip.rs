// Fixture: every line here must trip `wall-clock`.

fn measure() -> f64 {
    let started = std::time::Instant::now(); // trip: Instant::now
    started.elapsed().as_secs_f64()
}

fn stamp() -> u64 {
    use std::time::SystemTime; // trip: SystemTime
    0
}

fn roll() -> u64 {
    let mut rng = rand::thread_rng(); // trip: thread_rng
    0
}
