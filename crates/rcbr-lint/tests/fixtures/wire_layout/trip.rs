// Fixture: a drifted codec must trip `wire-layout`. Against the layout
// `vci=0..4, kind=4, denied=5, crc=6..8, rate=8..16` (total 16):
//   * encode writes the rate at 7..15, straddling the crc/rate boundary
//     and leaving byte 15 uncovered;
//   * cell_crc checksums 0..8, i.e. it covers its own crc field and
//     misses the rate bytes entirely.

pub const RM_CELL_BYTES: usize = 16;

pub fn encode(vci: u32, kind: u8, denied: u8, rate: u64) -> [u8; 16] {
    let mut buf = [0u8; 16];
    buf[0..4].copy_from_slice(&vci.to_be_bytes());
    buf[4] = kind;
    buf[5] = denied;
    buf[7..15].copy_from_slice(&rate.to_be_bytes()); // trip: straddles crc/rate
    let crc = cell_crc(&buf);
    buf[6..8].copy_from_slice(&crc.to_be_bytes());
    buf
}

pub fn decode(cell: &[u8; 16]) -> (u32, u8, u8, u64) {
    let vci = u32::from_be_bytes(cell[0..4].try_into().unwrap());
    let kind = cell[4];
    let denied = cell[5];
    let rate = u64::from_be_bytes(cell[8..16].try_into().unwrap());
    (vci, kind, denied, rate)
}

pub fn cell_crc(buf: &[u8; 16]) -> u16 {
    let mut acc: u16 = 0;
    for &b in &buf[0..8] {
        // trip: checksums its own crc field, misses rate
        acc = acc.wrapping_add(b as u16);
    }
    acc
}
