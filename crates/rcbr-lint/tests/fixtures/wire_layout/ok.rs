// Fixture: a codec consistent with the declared layout
// `vci=0..4, kind=4, denied=5, crc=6..8, rate=8..16` (total 16) must
// pass `wire-layout` cleanly.

pub const RM_CELL_BYTES: usize = 16;

pub fn encode(vci: u32, kind: u8, denied: u8, rate: u64) -> [u8; 16] {
    let mut buf = [0u8; 16];
    buf[0..4].copy_from_slice(&vci.to_be_bytes());
    buf[4] = kind;
    buf[5] = denied;
    buf[8..16].copy_from_slice(&rate.to_be_bytes());
    let crc = cell_crc(&buf);
    buf[6..8].copy_from_slice(&crc.to_be_bytes());
    buf
}

pub fn decode(cell: &[u8; 16]) -> Option<(u32, u8, u8, u64)> {
    let stored = u16::from_be_bytes([cell[6], cell[7]]);
    if stored != cell_crc(cell) {
        return None;
    }
    let vci = u32::from_be_bytes(cell[0..4].try_into().unwrap());
    let kind = cell[4];
    let denied = cell[5];
    let rate = u64::from_be_bytes(cell[8..16].try_into().unwrap());
    Some((vci, kind, denied, rate))
}

pub fn cell_crc(buf: &[u8; 16]) -> u16 {
    let mut acc: u16 = 0;
    for &b in buf[0..6].iter().chain(&buf[8..16]) {
        acc = acc.wrapping_add(b as u16);
    }
    acc
}
