// Fixture: raw superstep-count literals as estimator cadences — every
// marked line must trip `measurement-window`.

pub struct Estimator {
    pub window_ends: u64,
    pub decay_at: u64,
    pub horizon: u64,
}

impl Estimator {
    pub fn arm(&mut self, now: u64) {
        self.window_ends = now + 64; // trip: raw measurement window
    }

    pub fn should_decay(&self, now: u64) -> bool {
        now.saturating_sub(self.decay_at) > 16 // trip: raw decay cadence
    }

    pub fn extend(&mut self, now: u64) {
        let horizon = now + 128; // trip: raw estimation horizon
        self.horizon = horizon;
    }
}
