// Fixture: near-misses for `measurement-window` — none of these may
// trip. Cadences flow through *_supersteps names, and integers next to
// window/decay state in plain argument position are counts or indices,
// not cadences.

pub const DECAY_SUPERSTEPS: u64 = 16; // named unit: sanctioned

pub struct Estimator {
    pub measurement_window_supersteps: u64,
    pub window_ends: u64,
    pub windows_rolled: u64,
}

impl Estimator {
    pub fn arm(&mut self, now: u64) {
        // The count comes from a *_supersteps field, so the window that
        // mentions `window_ends` carries no raw literal.
        self.window_ends = now + self.measurement_window_supersteps;
    }

    pub fn should_decay(&self, now: u64) -> bool {
        now.saturating_sub(self.window_ends) > DECAY_SUPERSTEPS
    }

    pub fn note_roll(&mut self) {
        // Counting rolled *windows* is not a cadence: the literal sits in
        // argument position, never bound to cadence state.
        self.bump_windows(1);
    }

    pub fn pairs(&self, route: &[usize]) -> usize {
        // `.windows(2)` over a slice is iteration, not a cadence: the
        // literal is a plain argument.
        route.windows(2).count()
    }

    fn bump_windows(&mut self, n: u64) {
        self.windows_rolled += n;
    }
}
