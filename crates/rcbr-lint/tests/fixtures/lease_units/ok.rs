// Fixture: near-misses for `lease-units` — none of these may trip.
// Durations flow through *_supersteps names (the one place raw counts
// are allowed), and integers next to duration state in plain argument
// position are event counts, not durations.

pub const RETRY_TIMEOUT_SUPERSTEPS: u64 = 32; // named unit: sanctioned

pub struct Vc {
    pub lease_supersteps: u64,
    pub deadline: u64,
    pub timeouts_seen: u64,
}

impl Vc {
    pub fn arm(&mut self, now: u64) {
        // The count comes from a *_supersteps field, so the window that
        // mentions `deadline` carries no raw literal.
        self.deadline = now + self.lease_supersteps;
    }

    pub fn timed_out(&self, now: u64) -> bool {
        now.saturating_sub(self.deadline) > RETRY_TIMEOUT_SUPERSTEPS
    }

    pub fn note_timeout(&mut self) {
        // Counting timeout *events* is not a duration: the literal sits
        // in argument position, never bound to duration state.
        self.bump_timeouts(1);
    }

    fn bump_timeouts(&mut self, n: u64) {
        self.timeouts_seen += n;
    }
}
