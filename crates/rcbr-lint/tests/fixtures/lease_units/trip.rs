// Fixture: raw superstep-count literals as lease/timeout durations —
// every marked line must trip `lease-units`.

pub struct Vc {
    pub lease_expires: u64,
    pub deadline: u64,
}

impl Vc {
    pub fn arm(&mut self, now: u64) {
        self.lease_expires = now + 48; // trip: raw lease duration
    }

    pub fn timed_out(&self, now: u64) -> bool {
        now.saturating_sub(self.deadline) > 32 // trip: raw timeout window
    }

    pub fn reschedule(&mut self, now: u64) {
        let until = now + 7; // trip: raw backoff/settle duration
        self.deadline = until;
    }
}
