// Fixture: the determinism registry drifts in both directions. The test
// config declares deterministic = ["rounds"], wall_clock =
// ["wall_seconds"], with both structs living in this file.

pub struct RunReport {
    pub rounds: u64,
    pub wall_seconds: f64,
    /// trip: a new field with no determinism classification.
    pub surprise: u64,
}

pub struct ComparableReport {
    pub rounds: u64,
    /// trip: compared by the oracle but not declared deterministic.
    pub wall_seconds: f64,
}
