// Near-miss: every RunReport field is classified and the oracle
// compares exactly the deterministic set (deterministic = ["rounds"],
// wall_clock = ["wall_seconds"]).

pub struct RunReport {
    pub rounds: u64,
    pub wall_seconds: f64,
}

pub struct ComparableReport {
    pub rounds: u64,
}
