//! Near-miss for `salt-registry`: salts flow through the registry's
//! named consts, and salt-adjacent arithmetic that is not a salt value
//! (hash shifts, argument passing) stays exempt.

pub const SALT_PRIMARY: u8 = 0;
pub const SALT_GHOST: u8 = 1;
pub const SALT_TEARDOWN_BASE: u8 = 3;

pub struct Job {
    pub seq: u64,
    pub salt: u8,
}

pub fn emit(seq: u64, out: &mut Vec<Job>) {
    out.push(Job {
        seq,
        salt: SALT_GHOST,
    });
    for i in 0..2u8 {
        out.push(Job {
            seq,
            salt: SALT_TEARDOWN_BASE + i,
        });
    }
}

pub fn is_ghost(job: &Job) -> bool {
    job.salt != SALT_PRIMARY
}

pub fn fault_key(seq: u64, salt: u8) -> u64 {
    // A shift by a literal is hash layout, not a salt value.
    seq ^ ((salt as u64) << 40)
}

pub fn decide(seq: u64, salt: u8) -> u64 {
    // Plain argument position next to a salt identifier is exempt.
    fault_key(seq, salt)
}
