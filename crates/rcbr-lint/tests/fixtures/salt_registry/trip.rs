//! Trips `salt-registry`: bare integer literals minted as (or compared
//! against) fault-plane salts outside the registry module.

pub struct Job {
    pub seq: u64,
    pub salt: u8,
}

pub fn emit(seq: u64, out: &mut Vec<Job>) {
    // A struct literal minting a raw ghost salt.
    out.push(Job { seq, salt: 1 });
    // The historical teardown pattern: a raw base plus a walk index.
    for i in 0..2u8 {
        out.push(Job {
            seq,
            salt: 3 + i,
        });
    }
}

pub fn is_ghost(job: &Job) -> bool {
    // Comparison against a raw salt literal.
    job.salt != 0
}

pub fn is_primary(job: &Job) -> bool {
    job.salt == 0
}
