// Fixture: the salt registry drifts from the declared families
// (SALT_PRIMARY=0, SALT_GHOST=1, SALT_TEARDOWN_BASE=3..).

/// trip: declared family starts at 0, the const says 7.
pub const SALT_PRIMARY: u8 = 7;

pub const SALT_GHOST: u8 = 1;

/// trip: a salt minted outside every declared family.
pub const SALT_ROGUE: u8 = 2;

pub const SALT_TEARDOWN_BASE: u8 = 3;
