// Near-miss: the registry consts anchor their declared families exactly
// (SALT_PRIMARY=0, SALT_GHOST=1, SALT_TEARDOWN_BASE=3..) and no
// undeclared salt exists. Salt 2 is a historical gap, not a family.

pub const SALT_PRIMARY: u8 = 0;

pub const SALT_GHOST: u8 = 1;

pub const SALT_TEARDOWN_BASE: u8 = 3;

/// Not a salt: the prefix scan must not confuse sizes with salts.
pub const CELL_BYTES: usize = 16;
