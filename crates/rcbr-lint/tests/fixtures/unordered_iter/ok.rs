// Fixture: near-misses for `unordered-iter` — ordered collections and
// non-token mentions must not trip.

use std::collections::{BTreeMap, BTreeSet};

struct Table {
    rates: BTreeMap<u32, f64>,
    seen: BTreeSet<u64>,
}

fn explain() -> &'static str {
    // HashMap in a comment is fine.
    "we replaced HashMap with BTreeMap for deterministic iteration"
}
