// Fixture: every HashMap/HashSet mention here must trip `unordered-iter`.

use std::collections::HashMap; // trip
use std::collections::HashSet; // trip

struct Table {
    rates: HashMap<u32, f64>, // trip
    seen: HashSet<u64>,       // trip
}
