// Fixture: near-miss for `float-accum` — a sum inside a reduce_*
// function (which documents its partition-independent input order) is
// the sanctioned pattern.

/// Inputs are sorted by VCI before this is called, so the accumulation
/// order is partition-independent.
fn reduce_loss(finals: &[f64]) -> f64 {
    finals.iter().sum::<f64>() / finals.len() as f64
}
