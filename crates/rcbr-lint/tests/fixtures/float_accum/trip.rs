// Fixture: a float sum outside a reduce_* function must trip
// `float-accum`.

fn merge_loss(finals: &[f64]) -> f64 {
    finals.iter().sum::<f64>() / finals.len() as f64 // trip
}
