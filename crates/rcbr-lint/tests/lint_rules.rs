//! Rule fixtures: for every rule, one fixture that trips it and one
//! near-miss that must stay clean — plus suppression semantics, the
//! self-gate (the workspace itself lints clean), and a determinism
//! property for the report.

use std::path::PathBuf;

use rcbr_lint::config::Config;
use rcbr_lint::diag::Diagnostic;
use rcbr_lint::{check_source, collect_files, find_root, run_lint_files};

/// Read a fixture file from `tests/fixtures/<dir>/<file>`.
fn fixture(dir: &str, file: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

/// Lint a fixture as production code of `crate_name`, under `cfg_text`,
/// returning only diagnostics of `rule`.
fn lint_rule(
    rule: &str,
    dir: &str,
    file: &str,
    crate_name: &str,
    cfg_text: &str,
) -> Vec<Diagnostic> {
    let cfg = Config::parse(cfg_text).expect("fixture config parses");
    let rel = format!("crates/{crate_name}/src/{file}");
    let (diags, _) = check_source(&rel, crate_name, false, &fixture(dir, file), &cfg);
    diags.into_iter().filter(|d| d.rule == rule).collect()
}

/// Assert the trip fixture yields at least `min` diagnostics of `rule`
/// and the near-miss fixture yields none.
fn assert_rule(rule: &str, dir: &str, cfg_text: &str, min: usize) {
    let trips = lint_rule(rule, dir, "trip.rs", "rcbr-runtime", cfg_text);
    assert!(
        trips.len() >= min,
        "[{rule}] trip.rs: expected >= {min} diagnostics, got {}: {trips:#?}",
        trips.len()
    );
    for d in &trips {
        assert!(d.line > 0, "[{rule}] diagnostics carry line anchors");
        assert!(!d.snippet.is_empty(), "[{rule}] diagnostics carry snippets");
    }
    let misses = lint_rule(rule, dir, "ok.rs", "rcbr-runtime", cfg_text);
    assert!(
        misses.is_empty(),
        "[{rule}] ok.rs must be clean, got: {misses:#?}"
    );
}

#[test]
fn wall_clock_fixtures() {
    assert_rule("wall-clock", "wall_clock", "", 3);
}

#[test]
fn unordered_iter_fixtures() {
    assert_rule("unordered-iter", "unordered_iter", "", 4);
}

#[test]
fn ptr_identity_fixtures() {
    assert_rule("ptr-identity", "ptr_identity", "", 2);
}

#[test]
fn barrier_discipline_fixtures() {
    assert_rule("barrier-discipline", "barrier_discipline", "", 1);
}

#[test]
fn panic_path_fixtures() {
    assert_rule("panic-path", "panic_path", "", 5);
}

#[test]
fn unsafe_audit_requires_safety_comment() {
    // Outside forbid_crates, unsafe needs a // SAFETY: justification.
    assert_rule("unsafe-audit", "unsafe_audit", "", 1);
}

#[test]
fn unsafe_audit_forbid_crates_reject_even_justified_unsafe() {
    let cfg = "[rule.unsafe-audit]\nforbid_crates = [\"rcbr-runtime\"]\n";
    let justified = lint_rule("unsafe-audit", "unsafe_audit", "ok.rs", "rcbr-runtime", cfg);
    assert_eq!(
        justified.len(),
        1,
        "a SAFETY comment does not excuse unsafe in a forbidden crate"
    );
}

#[test]
fn float_sort_fixtures() {
    assert_rule("float-sort", "float_sort", "", 2);
}

#[test]
fn float_accum_fixtures() {
    assert_rule("float-accum", "float_accum", "", 1);
}

#[test]
fn lease_units_fixtures() {
    assert_rule("lease-units", "lease_units", "", 3);
}

#[test]
fn lease_units_allow_idents_exempt_audited_names() {
    // Grandfathering `lease_expires` silences exactly that trip; the
    // other raw durations still fire.
    let cfg = "[rule.lease-units]\nallow_idents = [\"lease_expires\"]\n";
    let trips = lint_rule("lease-units", "lease_units", "trip.rs", "rcbr-runtime", cfg);
    assert_eq!(
        trips.len(),
        2,
        "one audited name, two live trips: {trips:#?}"
    );
    assert!(
        trips.iter().all(|d| !d.snippet.contains("lease_expires")),
        "the allow_idents window must be exempt: {trips:#?}"
    );
}

#[test]
fn lease_units_supersteps_named_bindings_are_sanctioned() {
    // The sanctioned pattern from the rule's hazard text: the raw count
    // lives in a *_supersteps const/field, uses flow through the name.
    let src = "\
const REROUTE_SETTLE_SUPERSTEPS: u64 = 48;
fn settle(now: u64) -> u64 {
    now + REROUTE_SETTLE_SUPERSTEPS
}
";
    let cfg = Config::parse("").unwrap();
    let (diags, _) = check_source(
        "crates/rcbr-runtime/src/x.rs",
        "rcbr-runtime",
        false,
        src,
        &cfg,
    );
    assert!(
        !diags.iter().any(|d| d.rule == "lease-units"),
        "named superstep counts are the sanctioned home: {diags:#?}"
    );
}

#[test]
fn measurement_window_fixtures() {
    assert_rule("measurement-window", "measurement_window", "", 3);
}

#[test]
fn measurement_window_supersteps_named_cadences_are_sanctioned() {
    // The sanctioned pattern: the raw count lives in a *_supersteps
    // config knob, the roll schedule flows through the name.
    let src = "\
pub fn next_roll(superstep: u64, measurement_window_supersteps: u64) -> u64 {
    superstep + measurement_window_supersteps
}
";
    let cfg = Config::parse("").unwrap();
    let (diags, _) = check_source(
        "crates/rcbr-runtime/src/x.rs",
        "rcbr-runtime",
        false,
        src,
        &cfg,
    );
    assert!(
        !diags.iter().any(|d| d.rule == "measurement-window"),
        "named cadences are the sanctioned home: {diags:#?}"
    );
}

#[test]
fn salt_registry_fixtures() {
    assert_rule("salt-registry", "salt_registry", "", 4);
}

#[test]
fn salt_registry_exempts_the_registry_module_itself() {
    // The registry is where the literals live: the same source that trips
    // everywhere else is clean when it *is* the configured registry.
    let cfg_text = "[rule.salt-registry]\nregistry = \"crates/rcbr-runtime/src/trip.rs\"\n";
    let cfg = Config::parse(cfg_text).expect("config parses");
    let (diags, _) = check_source(
        "crates/rcbr-runtime/src/trip.rs",
        "rcbr-runtime",
        false,
        &fixture("salt_registry", "trip.rs"),
        &cfg,
    );
    assert!(
        !diags.iter().any(|d| d.rule == "salt-registry"),
        "the registry module declares the literals: {diags:#?}"
    );
}

const WIRE_CFG: &str = r#"
[rule.wire-layout]
total = 16
size_const = "RM_CELL_BYTES"
crc_field = "crc"
fields = ["vci=0..4", "kind=4", "denied=5", "crc=6..8", "rate=8..16"]
"#;

#[test]
fn wire_layout_fixtures() {
    // The drifted codec: encode straddles the crc/rate boundary AND
    // leaves a byte uncovered; the checksum covers itself and misses the
    // rate field.
    let trips = lint_rule(
        "wire-layout",
        "wire_layout",
        "trip.rs",
        "rcbr-net",
        WIRE_CFG,
    );
    assert!(
        trips.len() >= 3,
        "drifted codec must trip straddle + coverage checks: {trips:#?}"
    );
    let ok = lint_rule("wire-layout", "wire_layout", "ok.rs", "rcbr-net", WIRE_CFG);
    assert!(ok.is_empty(), "consistent codec must pass: {ok:#?}");
}

const PHASE_CFG: &str = r#"
[rule.phase-discipline]
entry_points = ["worker"]
mutator_fns = ["expire_leases"]
state_idents = ["route_state"]
"#;

#[test]
fn phase_discipline_fixtures() {
    // trip.rs: two undeclared roots (a named mutator and a state write);
    // ok.rs: the same mutations reached only through `worker`.
    assert_rule("phase-discipline", "phase_discipline", PHASE_CFG, 2);
}

#[test]
fn phase_discipline_diagnostics_name_the_chain() {
    let trips = lint_rule(
        "phase-discipline",
        "phase_discipline",
        "trip.rs",
        "rcbr-runtime",
        PHASE_CFG,
    );
    assert!(
        trips
            .iter()
            .any(|d| d.message.contains("rogue") && d.message.contains("expire_leases")),
        "the chain from root to mutator is named: {trips:#?}"
    );
}

const SALT_DISJOINT_CFG: &str = r#"
[rule.salt-disjointness]
families = ["SALT_PRIMARY=0", "SALT_GHOST=1", "SALT_TEARDOWN_BASE=3.."]
"#;

#[test]
fn salt_disjointness_fixtures() {
    // trip.rs: a const off its family start plus an undeclared salt;
    // ok.rs: the registry anchors every family exactly.
    assert_rule(
        "salt-disjointness",
        "salt_disjointness",
        SALT_DISJOINT_CFG,
        2,
    );
}

#[test]
fn salt_disjointness_rejects_overlapping_families() {
    // A config-level collision is itself a violation: the declared
    // ranges would share fault coin flips.
    let cfg = "[rule.salt-disjointness]\nfamilies = [\"SALT_A=0..4\", \"SALT_B=2\"]\n";
    let diags = lint_rule(
        "salt-disjointness",
        "salt_disjointness",
        "ok.rs",
        "rcbr-runtime",
        cfg,
    );
    assert!(
        diags.iter().any(|d| d.message.contains("overlap")),
        "{diags:#?}"
    );
}

fn counter_cfg(file: &str) -> String {
    format!(
        "[rule.counter-order]\n\
         report_file = \"crates/rcbr-runtime/src/{file}\"\n\
         report_struct = \"RunReport\"\n\
         oracle_file = \"crates/rcbr-runtime/src/{file}\"\n\
         oracle_struct = \"ComparableReport\"\n\
         deterministic = [\"rounds\"]\n\
         wall_clock = [\"wall_seconds\"]\n"
    )
}

#[test]
fn counter_order_fixtures() {
    // trip.rs: an unclassified RunReport field plus an oracle comparison
    // of a non-deterministic field.
    let trips = lint_rule(
        "counter-order",
        "counter_order",
        "trip.rs",
        "rcbr-runtime",
        &counter_cfg("trip.rs"),
    );
    assert!(trips.len() >= 2, "{trips:#?}");
    assert!(
        trips.iter().any(|d| d.message.contains("surprise")),
        "the unclassified field is named: {trips:#?}"
    );
    assert!(
        trips
            .iter()
            .any(|d| d.message.contains("wall_seconds") && d.message.contains("not")),
        "the over-eager oracle comparison is named: {trips:#?}"
    );
    let ok = lint_rule(
        "counter-order",
        "counter_order",
        "ok.rs",
        "rcbr-runtime",
        &counter_cfg("ok.rs"),
    );
    assert!(ok.is_empty(), "{ok:#?}");
}

#[test]
fn counter_order_is_silent_on_partial_scans() {
    // Linting some other file while the registry points elsewhere must
    // not error: the subject simply is not on the table.
    let diags = lint_rule(
        "counter-order",
        "counter_order",
        "ok.rs",
        "rcbr-runtime",
        &counter_cfg("absent.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn suppression_covers_line_and_counts() {
    let src = "\
fn f() {
    // lint:allow(wall-clock)
    let t = std::time::Instant::now();
    let u = std::time::Instant::now();
}
";
    let cfg = Config::parse("").unwrap();
    let (diags, suppressed) = check_source(
        "crates/rcbr-runtime/src/x.rs",
        "rcbr-runtime",
        false,
        src,
        &cfg,
    );
    let wall: Vec<_> = diags.iter().filter(|d| d.rule == "wall-clock").collect();
    assert_eq!(wall.len(), 1, "only the un-suppressed line remains");
    assert_eq!(wall[0].line, 4);
    assert_eq!(suppressed.get("wall-clock"), Some(&1));
}

#[test]
fn cfg_test_regions_are_exempt_by_default() {
    let src = "\
fn prod(x: Option<u32>) -> u32 {
    x.unwrap()
}
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
";
    let cfg = Config::parse("").unwrap();
    let (diags, _) = check_source(
        "crates/rcbr-runtime/src/x.rs",
        "rcbr-runtime",
        false,
        src,
        &cfg,
    );
    let panics: Vec<_> = diags.iter().filter(|d| d.rule == "panic-path").collect();
    assert_eq!(panics.len(), 1, "only the production unwrap trips");
    assert_eq!(panics[0].line, 2);
}

#[test]
fn seeded_violation_is_caught_with_file_line_anchor() {
    // The acceptance check from the issue: seeding an Instant::now() into
    // an rcbr-runtime source yields a diagnostic anchored to its line.
    let src = "fn hot() {\n    let t = std::time::Instant::now();\n}\n";
    let cfg = Config::parse("").unwrap();
    let (diags, _) = check_source(
        "crates/rcbr-runtime/src/engine.rs",
        "rcbr-runtime",
        false,
        src,
        &cfg,
    );
    let hit = diags
        .iter()
        .find(|d| d.rule == "wall-clock")
        .expect("seeded Instant::now must be caught");
    assert_eq!(hit.line, 2);
    assert!(hit
        .render()
        .starts_with("crates/rcbr-runtime/src/engine.rs:2:"));
}

/// The self-gate: the workspace this crate lives in must lint clean under
/// its own `lint.toml` — the same invocation CI runs with `--deny`.
#[test]
fn workspace_is_clean() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(&manifest).expect("lint.toml above the crate");
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let cfg = Config::parse(&cfg_text).unwrap();
    let files = collect_files(&root, &cfg).unwrap();
    assert!(files.len() > 50, "workspace walk found the sources");
    let report = run_lint_files(&root, &cfg, &files).unwrap();
    assert!(
        report.clean(),
        "workspace must lint clean: {:#?}",
        report.violations
    );
    assert!(report.rules.len() >= 6, "at least six rules stay active");
}

mod determinism {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The JSON report is byte-identical no matter what order files
        /// are scanned in.
        #[test]
        fn report_is_order_independent(seed in any::<u64>()) {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            let root = find_root(&manifest).unwrap();
            let cfg_text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
            let cfg = Config::parse(&cfg_text).unwrap();
            let files = collect_files(&root, &cfg).unwrap();
            let baseline = run_lint_files(&root, &cfg, &files).unwrap().to_json();

            // Deterministic Fisher-Yates driven by the proptest seed.
            let mut shuffled = files.clone();
            let mut state = seed | 1;
            for i in (1..shuffled.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            let report = run_lint_files(&root, &cfg, &shuffled).unwrap().to_json();
            prop_assert_eq!(baseline, report);
        }
    }
}
