//! Cross-function analysis: transitive taint through the multi-file
//! fixture tree, phase discipline over seeded mutations, the
//! counter-order registry, and the determinism / self-gate properties
//! of the graph passes.

use std::path::PathBuf;

use rcbr_lint::config::Config;
use rcbr_lint::diag::Diagnostic;
use rcbr_lint::source::SourceFile;
use rcbr_lint::{analyze_sources, collect_files, find_root, run_lint_files};

/// Load the `taint_transitive` fixture tree as rcbr-runtime production
/// sources, in the given filename order (the analysis must not care).
fn taint_tree(order: &[&str]) -> Vec<SourceFile> {
    let base = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/taint_transitive");
    order
        .iter()
        .map(|name| {
            let src = std::fs::read_to_string(base.join(name))
                .unwrap_or_else(|e| panic!("missing fixture {name}: {e}"));
            let rel = format!("crates/rcbr-runtime/src/{name}");
            SourceFile::new(&rel, "rcbr-runtime", false, &src)
        })
        .collect()
}

fn taint_diags(order: &[&str]) -> Vec<Diagnostic> {
    let cfg = Config::parse("").unwrap();
    let analysis = analyze_sources(taint_tree(order), &cfg);
    analysis
        .violations
        .into_iter()
        .filter(|d| d.message.contains("call chain reaches"))
        .collect()
}

/// The issue's acceptance shape: a wall-clock read in a helper two call
/// hops below an engine function is flagged at the engine's call site,
/// with the full chain named.
#[test]
fn three_hop_chain_is_flagged_at_every_link() {
    let diags = taint_diags(&["engine.rs", "mid.rs", "deep.rs"]);
    let engine_hit = diags
        .iter()
        .find(|d| d.path.ends_with("engine.rs"))
        .expect("the engine call site two hops from the seed is flagged");
    assert_eq!(engine_hit.rule, "wall-clock");
    assert!(
        engine_hit
            .message
            .contains("drive → plan → sample → Instant::now"),
        "chain names every link: {}",
        engine_hit.message
    );
    // The middle hop is flagged too — the chain is auditable link by link.
    assert!(
        diags
            .iter()
            .any(|d| d.path.ends_with("mid.rs") && d.message.contains("plan → sample")),
        "{diags:#?}"
    );
}

/// The sanctioned boundary: `tally → snapshot_total → sample` crosses a
/// snapshot_* function and must not be flagged.
#[test]
fn snapshot_boundary_stops_taint() {
    let diags = taint_diags(&["engine.rs", "mid.rs", "deep.rs"]);
    assert!(
        !diags.iter().any(|d| d.message.contains("tally")),
        "the boundary path is sanctioned: {diags:#?}"
    );
    assert!(
        !diags.iter().any(|d| d.message.contains("snapshot_total")),
        "boundaries neither carry nor emit taint: {diags:#?}"
    );
}

/// A seed rule's allow_files are boundaries at any call depth: routing
/// the same chain through the audited wall-clock file keeps the caller
/// clean.
#[test]
fn allow_files_are_boundaries_at_depth() {
    let cfg =
        Config::parse("[rule.wall-clock]\nallow_files = [\"crates/rcbr-runtime/src/deep.rs\"]\n")
            .unwrap();
    let analysis = analyze_sources(taint_tree(&["engine.rs", "mid.rs", "deep.rs"]), &cfg);
    assert!(
        !analysis
            .violations
            .iter()
            .any(|d| d.message.contains("call chain reaches")),
        "{:#?}",
        analysis.violations
    );
}

/// Scan order cannot change the analysis: every permutation of the
/// fixture tree yields byte-identical diagnostics.
#[test]
fn taint_diagnostics_are_scan_order_independent() {
    let baseline = format!("{:?}", taint_diags(&["engine.rs", "mid.rs", "deep.rs"]));
    for order in [
        ["deep.rs", "engine.rs", "mid.rs"],
        ["mid.rs", "deep.rs", "engine.rs"],
        ["deep.rs", "mid.rs", "engine.rs"],
    ] {
        assert_eq!(baseline, format!("{:?}", taint_diags(&order)));
    }
}

/// The issue's second acceptance shape: a RouteState mutation seeded
/// outside the declared quiescence entry points trips phase-discipline
/// with the chain from the undeclared root down to the mutation.
#[test]
fn seeded_route_state_mutation_outside_quiescence_trips() {
    let cfg = Config::parse(
        "[rule.phase-discipline]\n\
         entry_points = [\"crates/rcbr-runtime/src/engine.rs::worker\"]\n\
         state_idents = [\"route_state\"]\n",
    )
    .unwrap();
    let sources = vec![
        SourceFile::new(
            "crates/rcbr-runtime/src/engine.rs",
            "rcbr-runtime",
            false,
            "pub fn worker() { apply(); }\npub fn hotpatch() { apply(); }\n",
        ),
        SourceFile::new(
            "crates/rcbr-runtime/src/gen.rs",
            "rcbr-runtime",
            false,
            "pub struct Vc { pub route_state: u32 }\n\
             pub fn apply() { let mut vc = Vc { route_state: 0 }; vc.route_state = 1; }\n",
        ),
    ];
    let analysis = analyze_sources(sources, &cfg);
    let hit = analysis
        .violations
        .iter()
        .find(|d| d.rule == "phase-discipline")
        .expect("undeclared root must trip");
    assert!(
        hit.message.contains("hotpatch") && hit.message.contains("apply"),
        "chain names root and mutator: {}",
        hit.message
    );
    // `worker` is sanctioned: only the hotpatch root is flagged.
    assert_eq!(
        analysis
            .violations
            .iter()
            .filter(|d| d.rule == "phase-discipline")
            .count(),
        1,
        "{:#?}",
        analysis.violations
    );
}

/// Self-gate for the analyzer itself: the rcbr-lint crate (fixtures
/// excluded, as in lint.toml) scans clean under the workspace config.
#[test]
fn lint_crate_scans_itself_clean() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(&manifest).expect("lint.toml above the crate");
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let cfg = Config::parse(&cfg_text).unwrap();
    let files: Vec<_> = collect_files(&root, &cfg)
        .unwrap()
        .into_iter()
        .filter(|p| p.starts_with(root.join("crates/rcbr-lint")))
        .collect();
    assert!(files.len() > 10, "the crate walk found its sources");
    let report = run_lint_files(&root, &cfg, &files).unwrap();
    assert!(
        report.clean(),
        "rcbr-lint must hold itself to its own bar: {:#?}",
        report.violations
    );
}

/// The report's graph stats are populated on a workspace scan — a clean
/// report with an empty graph would mean the cross-function passes
/// silently analyzed nothing.
#[test]
fn workspace_report_carries_graph_coverage() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(&manifest).expect("lint.toml above the crate");
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let cfg = Config::parse(&cfg_text).unwrap();
    let files = collect_files(&root, &cfg).unwrap();
    let report = run_lint_files(&root, &cfg, &files).unwrap();
    assert!(report.graph.functions > 100, "{:?}", report.graph);
    assert!(report.graph.call_edges > 100, "{:?}", report.graph);
    let json = report.to_json();
    assert!(json.contains("\"graph\": {\"call_edges\": "), "{json}");
}
