#![warn(missing_docs)]

//! # criterion (offline stand-in)
//!
//! The build container has no registry access, so the real `criterion`
//! crate cannot be fetched. This crate keeps `cargo bench` working by
//! reimplementing the subset of the API the workspace's benches use:
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Unlike the real criterion there is no statistical analysis, outlier
//! detection, or HTML report: each benchmark is warmed up once, timed for
//! a fixed number of samples, and the median per-iteration wall-clock
//! time is printed. That is enough to catch order-of-magnitude
//! algorithmic regressions, which is all these benches are for.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched-iteration setup output is grouped between timings.
///
/// The stand-in times one routine call per setup call regardless of the
/// variant, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; the real criterion batches many per alloc.
    SmallInput,
    /// Routine input is large; the real criterion batches few per alloc.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the sweep parameter alone, e.g. `group/20`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// An id with both a function label and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher<'a> {
    samples: usize,
    times: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine`, re-running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.times.push(start.elapsed());
            drop(out);
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.times.push(start.elapsed());
            drop(out);
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (min 2 here; the
    /// real criterion enforces a minimum of 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for compatibility; the stand-in has a fixed time budget
    /// of `sample_size` runs, so the target time is ignored.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut times = Vec::with_capacity(self.sample_size + 1);
        // One untimed warm-up pass so lazy init and cache effects do not
        // land in the first sample.
        {
            let mut warm = Bencher {
                samples: 1,
                times: &mut Vec::new(),
            };
            f(&mut warm);
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: &mut times,
        };
        f(&mut bencher);
        report(&full, &times);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(name: &str, times: &[Duration]) {
    let mut sorted: Vec<Duration> = times.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    println!(
        "{name:<48} median {} (min {}, max {}, n={})",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Benchmark driver; entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // flags the real criterion accepts (e.g. `--bench`) are skipped.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Kept for API compatibility with the real criterion's builder.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Opaque-to-the-optimizer value laundering, as in the real criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut times = Vec::new();
        let mut b = Bencher {
            samples: 5,
            times: &mut times,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 5);
        assert_eq!(times.len(), 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut times = Vec::new();
        let mut b = Bencher {
            samples: 4,
            times: &mut times,
        };
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
        assert_eq!(times.len(), 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(20).to_string(), "20");
        assert_eq!(BenchmarkId::new("opt", 5).to_string(), "opt/5");
    }
}
