#![warn(missing_docs)]

//! # serde_json (offline stand-in)
//!
//! JSON rendering and parsing over the in-tree `serde` [`Value`] model.
//! Like Python's `json` module, non-finite floats are written as the
//! literals `Infinity`, `-Infinity`, and `NaN`, and the parser accepts
//! them — the statistics types this workspace serializes initialize
//! extrema to ±∞, which strict JSON cannot represent.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_json_value(&value)?)
}

/// Convert any serializable value into the data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_float(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x == f64::INFINITY {
        out.push_str("Infinity");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // `{}` is Rust's shortest round-trip representation; force a
        // decimal point or exponent so the value re-parses as a float.
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&-2i64).unwrap(), "-2");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
        let y: f64 = from_str("7").unwrap();
        assert_eq!(y, 7.0);
    }

    #[test]
    fn roundtrip_nonfinite() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "Infinity");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "-Infinity");
        let inf: f64 = from_str("Infinity").unwrap();
        assert_eq!(inf, f64::INFINITY);
        let nan: f64 = from_str("NaN").unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.5)];
        let s = to_string(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&s).unwrap();
        assert_eq!(v, back);

        let mut m = std::collections::HashMap::new();
        m.insert(7u32, 0.5f64);
        m.insert(3u32, 1.5f64);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"3\":1.5,\"7\":0.5}"); // sorted keys
        let back: std::collections::HashMap<u32, f64> = from_str(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("[1").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":1}").is_err());
    }
}
