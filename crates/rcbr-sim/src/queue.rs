//! Slotted fluid queues.
//!
//! The paper models every service (CBR, VBR, RCBR) as "traffic from a source
//! is queued at a buffer ... and the network drains the buffer at a given
//! drain rate" (Section II). [`FluidQueue`] is exactly that abstraction at
//! slot granularity: each slot offers some arriving bits and some service
//! capacity, the backlog evolves as `q' = max(q + a - s, 0)`, and anything
//! that would push the backlog above the buffer size is counted as lost.
//!
//! Fluid (fractional-bit) semantics match the paper's analysis; cell-level
//! quantization is handled separately in `rcbr-net` where it matters.

use serde::{Deserialize, Serialize};

/// Outcome of offering one slot of arrivals to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome {
    /// Bits admitted to the buffer (arrivals minus losses).
    pub admitted: f64,
    /// Bits dropped because the buffer was full.
    pub lost: f64,
    /// Bits actually served during the slot.
    pub served: f64,
    /// Backlog at the end of the slot.
    pub backlog: f64,
}

/// A finite (or infinite) fluid buffer drained at a per-slot service amount.
///
/// Loss accounting follows the paper's simulations: the quantity of interest
/// is the *fraction of bits lost*, i.e. `total_lost / total_arrived`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluidQueue {
    capacity: f64,
    backlog: f64,
    total_arrived: f64,
    total_lost: f64,
    total_served: f64,
    peak_backlog: f64,
}

impl FluidQueue {
    /// Create a queue with the given buffer size in bits.
    ///
    /// # Panics
    /// Panics if `capacity` is negative or NaN (use
    /// [`FluidQueue::unbounded`] for an infinite buffer).
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity >= 0.0,
            "buffer capacity must be nonnegative, got {capacity}"
        );
        Self {
            capacity,
            backlog: 0.0,
            total_arrived: 0.0,
            total_lost: 0.0,
            total_served: 0.0,
            peak_backlog: 0.0,
        }
    }

    /// Create a queue with an unlimited buffer (used to measure how much
    /// buffering a non-renegotiated service *would* need — Fig. 5's tail).
    pub fn unbounded() -> Self {
        Self {
            capacity: f64::INFINITY,
            backlog: 0.0,
            total_arrived: 0.0,
            total_lost: 0.0,
            total_served: 0.0,
            peak_backlog: 0.0,
        }
    }

    /// Offer `arrival` bits and drain up to `service` bits in one slot.
    ///
    /// Service order follows the paper's model: arrivals are added first,
    /// then the slot's service is applied, then overflow is dropped. (With
    /// fluid traffic the ordering only shifts loss by at most one slot of
    /// service; this ordering is the conservative one.)
    ///
    /// # Panics
    /// Panics if `arrival` or `service` is negative or NaN.
    pub fn offer(&mut self, arrival: f64, service: f64) -> SlotOutcome {
        assert!(arrival >= 0.0, "arrival must be nonnegative, got {arrival}");
        assert!(service >= 0.0, "service must be nonnegative, got {service}");
        self.total_arrived += arrival;

        let before_service = self.backlog + arrival;
        let served = before_service.min(service);
        let after_service = before_service - served;
        let lost = (after_service - self.capacity).max(0.0);
        self.backlog = after_service - lost;

        self.total_lost += lost;
        self.total_served += served;
        if self.backlog > self.peak_backlog {
            self.peak_backlog = self.backlog;
        }
        SlotOutcome {
            admitted: arrival - lost,
            lost,
            served,
            backlog: self.backlog,
        }
    }

    /// Current backlog in bits.
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// Largest backlog ever observed.
    pub fn peak_backlog(&self) -> f64 {
        self.peak_backlog
    }

    /// Buffer size in bits (`f64::INFINITY` for unbounded queues).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Total bits offered so far.
    pub fn total_arrived(&self) -> f64 {
        self.total_arrived
    }

    /// Total bits lost so far.
    pub fn total_lost(&self) -> f64 {
        self.total_lost
    }

    /// Total bits served so far.
    pub fn total_served(&self) -> f64 {
        self.total_served
    }

    /// Fraction of offered bits lost so far (0 if nothing has arrived).
    pub fn loss_fraction(&self) -> f64 {
        if self.total_arrived > 0.0 {
            self.total_lost / self.total_arrived
        } else {
            0.0
        }
    }

    /// Virtual delay of a bit arriving now, were the queue drained at
    /// `rate` bits/second: `backlog / rate`.
    pub fn virtual_delay(&self, rate: f64) -> f64 {
        if rate > 0.0 {
            self.backlog / rate
        } else if self.backlog == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    }

    /// Reset the backlog and all counters, keeping the capacity.
    pub fn reset(&mut self) {
        self.backlog = 0.0;
        self.total_arrived = 0.0;
        self.total_lost = 0.0;
        self.total_served = 0.0;
        self.peak_backlog = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn drains_and_backlogs() {
        let mut q = FluidQueue::new(100.0);
        let o = q.offer(30.0, 10.0);
        assert_eq!(o.served, 10.0);
        assert_eq!(o.backlog, 20.0);
        assert_eq!(o.lost, 0.0);
        let o = q.offer(0.0, 50.0);
        assert_eq!(o.served, 20.0);
        assert_eq!(o.backlog, 0.0);
    }

    #[test]
    fn overflow_is_counted_as_loss() {
        let mut q = FluidQueue::new(50.0);
        let o = q.offer(100.0, 20.0);
        // 100 arrive, 20 served, 80 remain, 30 overflow the 50-bit buffer.
        assert_eq!(o.served, 20.0);
        assert_eq!(o.lost, 30.0);
        assert_eq!(o.backlog, 50.0);
        assert_eq!(q.loss_fraction(), 0.3);
    }

    #[test]
    fn unbounded_never_loses() {
        let mut q = FluidQueue::unbounded();
        for _ in 0..1000 {
            q.offer(1e9, 0.0);
        }
        assert_eq!(q.total_lost(), 0.0);
        assert_eq!(q.backlog(), 1e12);
        assert_eq!(q.peak_backlog(), 1e12);
    }

    #[test]
    fn zero_capacity_is_bufferless() {
        let mut q = FluidQueue::new(0.0);
        let o = q.offer(10.0, 4.0);
        assert_eq!(o.served, 4.0);
        assert_eq!(o.lost, 6.0);
        assert_eq!(o.backlog, 0.0);
    }

    #[test]
    fn virtual_delay() {
        let mut q = FluidQueue::new(1000.0);
        q.offer(500.0, 0.0);
        assert_eq!(q.virtual_delay(250.0), 2.0);
        assert_eq!(q.virtual_delay(0.0), f64::INFINITY);
        q.reset();
        assert_eq!(q.virtual_delay(0.0), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = FluidQueue::new(10.0);
        q.offer(100.0, 0.0);
        q.reset();
        assert_eq!(q.backlog(), 0.0);
        assert_eq!(q.total_arrived(), 0.0);
        assert_eq!(q.loss_fraction(), 0.0);
    }

    proptest! {
        /// Conservation: arrivals = served + lost + backlog, and the backlog
        /// never exceeds capacity.
        #[test]
        fn conservation_and_capacity(
            cap in 0.0..1e6f64,
            slots in proptest::collection::vec((0.0..1e5f64, 0.0..1e5f64), 1..200),
        ) {
            let mut q = FluidQueue::new(cap);
            for (a, s) in slots {
                let o = q.offer(a, s);
                prop_assert!(o.backlog <= cap + 1e-6);
                prop_assert!(o.lost >= 0.0 && o.served >= 0.0);
            }
            let balance = q.total_arrived() - q.total_served() - q.total_lost() - q.backlog();
            prop_assert!(balance.abs() <= 1e-6 * q.total_arrived().max(1.0));
        }

        /// Monotonicity: a bigger buffer never loses more bits on the same
        /// arrival/service sequence.
        #[test]
        fn bigger_buffer_loses_no_more(
            cap in 0.0..1e5f64,
            extra in 0.0..1e5f64,
            slots in proptest::collection::vec((0.0..1e4f64, 0.0..1e4f64), 1..100),
        ) {
            let mut small = FluidQueue::new(cap);
            let mut big = FluidQueue::new(cap + extra);
            for &(a, s) in &slots {
                small.offer(a, s);
                big.offer(a, s);
            }
            prop_assert!(big.total_lost() <= small.total_lost() + 1e-9);
        }
    }
}
