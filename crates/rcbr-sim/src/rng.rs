//! Seedable, portable random-number streams.
//!
//! Every experiment in the reproduction derives all of its randomness from a
//! single `u64` seed through [`SimRng`], so results are reproducible
//! bit-for-bit across runs and machines. The generator is an in-tree
//! ChaCha12 implementation (the build environment cannot fetch
//! `rand_chacha`): ChaCha's output is a pure function of (key, counter,
//! stream) with no platform-dependent state, so the stream is stable across
//! machines and compiler versions by construction.
//!
//! The distribution samplers (exponential, normal, lognormal, bounded
//! Pareto, geometric) are implemented here from their textbook inverses /
//! transforms rather than pulling in `rand_distr`.

/// ChaCha block-function constants, "expand 32-byte k".
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// The ChaCha12 core: 256-bit key, 64-bit block counter, 64-bit stream id.
///
/// State layout follows RFC 7539's word order, except that words 12–13 are
/// a 64-bit little-endian block counter and words 14–15 a 64-bit stream id
/// (the IETF variant uses a 32-bit counter and 96-bit nonce; the original
/// djb variant uses this split, which is what `rand_chacha` exposes as
/// `set_stream`).
#[derive(Debug, Clone)]
struct ChaCha12 {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    /// Unconsumed words of the current block, drained from index `cursor`.
    buffer: [u32; 16],
    cursor: usize,
}

impl ChaCha12 {
    fn new(key: [u32; 8], stream: u64) -> Self {
        Self {
            key,
            counter: 0,
            stream,
            buffer: [0; 16],
            cursor: 16,
        }
    }

    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..6 {
            // Double round: column round then diagonal round.
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// A deterministic random stream with named substreams.
///
/// Substreams let independent parts of a simulation (e.g. each multiplexed
/// source) draw from statistically independent generators derived from one
/// master seed, so adding a consumer never perturbs the draws of another.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12,
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    ///
    /// The seed is expanded to the 256-bit ChaCha key with SplitMix64, the
    /// standard expander for exactly this purpose (it is a bijection on the
    /// seed, so distinct seeds give distinct keys).
    pub fn from_seed(seed: u64) -> Self {
        let mut expander = seed;
        let mut next = || {
            expander = expander.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = expander;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in 0..4 {
            let word = next();
            key[2 * pair] = word as u32;
            key[2 * pair + 1] = (word >> 32) as u32;
        }
        Self {
            inner: ChaCha12::new(key, 0),
        }
    }

    /// Derive an independent substream identified by `label`.
    ///
    /// Uses ChaCha's 64-bit stream field, so substreams with different
    /// labels never overlap, and the substream is a function of the master
    /// key and the label alone — independent of how far `self` has been
    /// consumed.
    pub fn substream(&self, label: u64) -> Self {
        Self {
            inner: ChaCha12::new(self.inner.key, label),
        }
    }

    /// Next 64 random bits (exposed for hashing/shuffling helpers).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> the standard dyadic uniform on [0, 1).
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be nonempty");
        // Lemire's widening-multiply method with rejection, so the draw is
        // exactly uniform for every n.
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let x = self.inner.next_u64();
            if x <= zone {
                return ((x as u128 * n as u128) >> 64) as usize;
            }
        }
    }

    /// Exponential draw with the given rate (mean `1/rate`), by inversion.
    ///
    /// # Panics
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        // 1 - U is in (0, 1], so ln never sees 0.
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Standard normal draw via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // U1 in (0, 1] so ln is finite; U2 in [0, 1).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal draw: `exp(N(mu, sigma))` where `mu`/`sigma` are the
    /// parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal draw parameterized by its own mean and coefficient of
    /// variation (`cv = std/mean`), which is how the traffic models are
    /// calibrated.
    ///
    /// # Panics
    /// Panics if `mean <= 0` or `cv < 0`.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean > 0.0, "lognormal mean must be positive");
        assert!(cv >= 0.0, "coefficient of variation must be nonnegative");
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Bounded Pareto draw on `[lo, hi]` with shape `alpha`, by inversion.
    ///
    /// Used for scene durations: video scene lengths are heavy-tailed, which
    /// is what produces the paper's "sustained peaks lasting tens of
    /// seconds".
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(
            alpha > 0.0 && lo > 0.0 && hi > lo,
            "invalid bounded Pareto parameters"
        );
        let u = self.uniform();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the Pareto truncated to [lo, hi].
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Geometric draw: number of Bernoulli(`p`) trials up to and including
    /// the first success (support `1, 2, 3, ...`).
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "geometric p must be in (0, 1], got {p}"
        );
        if p == 1.0 {
            return 1;
        }
        let u = 1.0 - self.uniform(); // in (0, 1]
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }

    /// Bernoulli draw with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Sample an index from a discrete distribution given by `weights`
    /// (nonnegative, not all zero).
    pub fn discrete(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "discrete weights must have positive sum");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "negative weight");
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point round-off can walk past the end; return the last
        // positive-weight index.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("positive total implies a positive weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(mut f: impl FnMut() -> f64, n: usize) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn chacha_matches_rfc7539_vector() {
        // RFC 7539 §2.3.2 test vector, adapted: same key/counter/nonce
        // wiring but 20 rounds there vs 12 here, so instead check the
        // structural properties the generator relies on: refill is a pure
        // function of (key, counter, stream), and consecutive blocks
        // differ.
        let key = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let mut a = ChaCha12::new(key, 9);
        let mut b = ChaCha12::new(key, 9);
        let block_a: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let block_b: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_eq!(block_a, block_b);
        assert_ne!(&block_a[..16], &block_a[16..], "blocks must differ");
    }

    #[test]
    fn substreams_differ_and_are_reproducible() {
        let root = SimRng::from_seed(42);
        let mut s1 = root.substream(1);
        let mut s2 = root.substream(2);
        let mut s1b = root.substream(1);
        let x1: Vec<f64> = (0..10).map(|_| s1.uniform()).collect();
        let x2: Vec<f64> = (0..10).map(|_| s2.uniform()).collect();
        let x1b: Vec<f64> = (0..10).map(|_| s1b.uniform()).collect();
        assert_eq!(x1, x1b);
        assert_ne!(x1, x2);
    }

    #[test]
    fn substream_is_independent_of_parent_position() {
        let mut root = SimRng::from_seed(42);
        let before: Vec<f64> = {
            let mut s = root.substream(9);
            (0..10).map(|_| s.uniform()).collect()
        };
        let _ = root.uniform(); // advance the parent
        let after: Vec<f64> = {
            let mut s = root.substream(9);
            (0..10).map(|_| s.uniform()).collect()
        };
        assert_eq!(before, after);
    }

    #[test]
    fn index_is_unbiased_enough() {
        let mut rng = SimRng::from_seed(11);
        let n = 30_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[rng.index(3)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = SimRng::from_seed(1);
        let m = sample_mean(|| rng.exponential(2.0), 20_000);
        assert!((m - 0.5).abs() < 0.02, "mean {m} != 0.5");
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = SimRng::from_seed(2);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn lognormal_mean_cv_is_calibrated() {
        let mut rng = SimRng::from_seed(3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.lognormal_mean_cv(100.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
        assert!(
            (var.sqrt() / mean - 0.5).abs() < 0.05,
            "cv {}",
            var.sqrt() / mean
        );
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut rng = SimRng::from_seed(4);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1.2, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x), "{x} out of range");
        }
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = SimRng::from_seed(5);
        let p = 0.25;
        let n = 20_000;
        let m = (0..n).map(|_| rng.geometric(p) as f64).sum::<f64>() / n as f64;
        assert!((m - 1.0 / p).abs() < 0.1, "mean {m} != 4");
        assert_eq!(rng.geometric(1.0), 1);
    }

    #[test]
    fn discrete_respects_weights() {
        let mut rng = SimRng::from_seed(6);
        let w = [1.0, 0.0, 3.0];
        let n = 30_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[rng.discrete(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "frac0 {frac0}");
    }

    #[test]
    fn discrete_handles_trailing_zero_weight() {
        let mut rng = SimRng::from_seed(7);
        let w = [1.0, 0.0];
        for _ in 0..1000 {
            assert_eq!(rng.discrete(&w), 0);
        }
    }
}
