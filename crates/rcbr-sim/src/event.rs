//! Discrete-event queue and scheduler.
//!
//! The queue is a binary heap keyed on `(time, sequence)` so that events
//! scheduled for the same instant are delivered in FIFO order of their
//! scheduling. This makes simulations deterministic: two runs with the same
//! seed and the same scheduling order produce identical trajectories.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue delivering events in nondecreasing time order, breaking
/// ties by insertion order.
///
/// `E` is the caller's event payload; the queue imposes no trait bounds on
/// it beyond what `BinaryHeap` needs internally (none — ordering is done on
/// the key only).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Times are finite by construction (`push` rejects NaN).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` at absolute time `time` (seconds).
    ///
    /// # Panics
    /// Panics if `time` is NaN; a NaN timestamp would silently corrupt the
    /// heap order.
    pub fn push(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// A minimal simulation driver: an [`EventQueue`] plus the current simulated
/// time.
///
/// The scheduler enforces causality — events may not be scheduled in the
/// past — and advances `now` to each event's timestamp as it is delivered.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: f64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Create a scheduler with `now == 0`.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: 0.0,
        }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `payload` to fire `delay` seconds from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        assert!(delay >= 0.0, "delay must be nonnegative, got {delay}");
        self.queue.push(self.now + delay, payload);
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than `now` (beyond a tiny tolerance for
    /// floating-point round-off) or NaN.
    pub fn schedule_at(&mut self, time: f64, payload: E) {
        assert!(
            time >= self.now - 1e-9,
            "cannot schedule in the past: t={time}, now={}",
            self.now
        );
        self.queue.push(time.max(self.now), payload);
    }

    /// Deliver the next event, advancing `now` to its timestamp.
    pub fn next_event(&mut self) -> Option<(f64, E)> {
        let (t, e) = self.queue.pop()?;
        self.now = t;
        Some((t, e))
    }

    /// Time of the next pending event without delivering it.
    pub fn peek_time(&self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Run until the queue is empty or `handler` returns `false`,
    /// whichever comes first. Returns the number of events delivered.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, f64, E) -> bool) -> u64 {
        let mut delivered = 0;
        while let Some((t, e)) = self.next_event() {
            delivered += 1;
            if !handler(self, t, e) {
                break;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_is_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn scheduler_advances_clock() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(2.0, 1);
        s.schedule_in(1.0, 2);
        assert_eq!(s.next_event(), Some((1.0, 2)));
        assert_eq!(s.now(), 1.0);
        assert_eq!(s.next_event(), Some((2.0, 1)));
        assert_eq!(s.now(), 2.0);
        assert_eq!(s.next_event(), None);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_in(1.0, ());
        s.next_event();
        s.schedule_at(0.5, ());
    }

    #[test]
    fn run_delivers_until_handler_stops() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..10 {
            s.schedule_in(i as f64, i);
        }
        let mut seen = Vec::new();
        let n = s.run(|_, _, e| {
            seen.push(e);
            e < 4
        });
        // Events 0..=3 return true; event 4 is delivered, returns false, stops.
        assert_eq!(n, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(1.0, 0);
        let mut times = Vec::new();
        s.run(|s, t, gen| {
            times.push(t);
            if gen < 3 {
                s.schedule_in(1.0, gen + 1);
            }
            true
        });
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
