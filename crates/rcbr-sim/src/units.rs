//! Unit helpers and conversions.
//!
//! The whole workspace uses `f64` bits, bits/second, and seconds. The paper
//! reports rates in "kb/s" and buffers in "kb" where k = 1000 (SI), not
//! 1024; these helpers keep call sites honest about that convention.

/// Bits per kilobit (SI convention used throughout the paper).
pub const KILO: f64 = 1_000.0;
/// Bits per megabit.
pub const MEGA: f64 = 1_000_000.0;
/// Bits per gigabit.
pub const GIGA: f64 = 1_000_000_000.0;

/// Convert kilobits (or kb/s) to bits (or bits/s).
#[inline]
pub fn kb(v: f64) -> f64 {
    v * KILO
}

/// Convert megabits (or Mb/s) to bits (or bits/s).
#[inline]
pub fn mb(v: f64) -> f64 {
    v * MEGA
}

/// Convert a rate in kilobits/second to bits/second. Alias of [`kb`] that
/// reads better at rate call sites.
#[inline]
pub fn kbps(v: f64) -> f64 {
    kb(v)
}

/// Convert a rate in megabits/second to bits/second. Alias of [`mb`].
#[inline]
pub fn mbps(v: f64) -> f64 {
    mb(v)
}

/// Render a bit quantity with an adaptive unit, e.g. `374.0 kb`.
pub fn fmt_bits(bits: f64) -> String {
    let a = bits.abs();
    if a >= GIGA {
        format!("{:.3} Gb", bits / GIGA)
    } else if a >= MEGA {
        format!("{:.3} Mb", bits / MEGA)
    } else if a >= KILO {
        format!("{:.3} kb", bits / KILO)
    } else {
        format!("{bits:.1} b")
    }
}

/// Render a rate with an adaptive unit, e.g. `374.0 kb/s`.
pub fn fmt_rate(bps: f64) -> String {
    format!("{}/s", fmt_bits(bps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_use_si_kilo() {
        assert_eq!(kb(374.0), 374_000.0);
        assert_eq!(mb(2.4), 2_400_000.0);
        assert_eq!(kbps(64.0), 64_000.0);
        assert_eq!(mbps(1.5), 1_500_000.0);
    }

    #[test]
    fn formatting_picks_adaptive_units() {
        assert_eq!(fmt_bits(300.0 * KILO), "300.000 kb");
        assert_eq!(fmt_bits(100.0 * MEGA), "100.000 Mb");
        assert_eq!(fmt_bits(2.5 * GIGA), "2.500 Gb");
        assert_eq!(fmt_bits(12.0), "12.0 b");
        assert_eq!(fmt_rate(374.0 * KILO), "374.000 kb/s");
    }
}
