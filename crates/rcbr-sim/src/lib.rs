#![warn(missing_docs)]

//! # rcbr-sim — discrete-event simulation kernel and statistics substrate
//!
//! This crate provides the simulation machinery shared by every experiment in
//! the RCBR reproduction:
//!
//! * [`event`] — a deterministic discrete-event queue with stable FIFO
//!   ordering among simultaneous events, and a small [`event::Scheduler`]
//!   driver that tracks simulated time.
//! * [`rng`] — seedable, *portable* random-number streams built on
//!   `ChaCha12`, with the distribution samplers the traffic models need
//!   (exponential, normal/lognormal, bounded Pareto, geometric) implemented
//!   from first principles so experiments are reproducible bit-for-bit.
//! * [`queue`] — slotted fluid queues: the buffer-drained-at-a-rate
//!   abstraction that the paper uses to model CBR, VBR, and RCBR service
//!   (Section II of the paper), with loss and delay accounting.
//! * [`stats`] — running moments, confidence intervals, the paper's
//!   replication stopping rules (Section V-B and VI), time-weighted averages
//!   of piecewise-constant signals, and histograms.
//!
//! ## Conventions
//!
//! Data volumes are `f64` **bits**, rates are `f64` **bits/second**, and
//! times are `f64` **seconds**. The paper's "kb" is 1000 bits; helper
//! constructors are in [`units`].
//!
//! The kernel is deliberately synchronous: the workload is CPU-bound, so an
//! async runtime would add complexity without benefit.

pub mod event;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod units;

pub use event::{EventQueue, Scheduler};
pub use queue::{FluidQueue, SlotOutcome};
pub use rng::SimRng;
pub use stats::{ConfidenceInterval, Histogram, RunningStats, StoppingRule, TimeWeighted};
