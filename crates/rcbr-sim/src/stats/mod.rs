//! Statistics substrate.
//!
//! Everything the experiments need to estimate probabilities and decide when
//! to stop sampling:
//!
//! * [`RunningStats`] — numerically stable streaming moments (Welford).
//! * [`ConfidenceInterval`] and [`StoppingRule`] — the paper's replication
//!   rules: "we repeat the simulations until the sample standard deviation
//!   of the estimate is less than 20% of the estimate" (Section V-B), and
//!   the Section VI early-exit "stop if the target failure probability lies
//!   to the right of the confidence interval".
//! * [`TimeWeighted`] — time averages of piecewise-constant signals
//!   (utilization, reserved bandwidth).
//! * [`Histogram`] — fixed-bin histograms with quantiles, plus
//!   [`DiscreteDistribution`], the normalized distribution over discrete
//!   bandwidth levels used as the traffic descriptor in Section VI.

mod ci;
mod histogram;
mod running;
mod timeweighted;

pub use ci::{ConfidenceInterval, StopDecision, StoppingRule};
pub use histogram::{DiscreteDistribution, Histogram};
pub use running::RunningStats;
pub use timeweighted::TimeWeighted;
