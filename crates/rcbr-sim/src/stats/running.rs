//! Streaming sample moments (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Numerically stable running mean / variance / extrema of a sample stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    ///
    /// # Panics
    /// Panics on NaN: a NaN observation would silently poison every
    /// downstream estimate.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "observation must not be NaN");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel Welford / Chan).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n > 0 {
            self.mean
        } else {
            0.0
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n >= 2 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean: `std_dev / sqrt(n)`.
    pub fn std_error(&self) -> f64 {
        if self.n >= 2 {
            self.std_dev() / (self.n as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation of the sample (`std_dev / |mean|`), or
    /// `+inf` when the mean is zero and the data varies.
    pub fn cv(&self) -> f64 {
        let m = self.mean().abs();
        let s = self.std_dev();
        if m > 0.0 {
            s / m
        } else if s == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn moments_of_known_sample() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; unbiased sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s: RunningStats = [3.5].into_iter().collect();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        RunningStats::new().push(f64::NAN);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            a in proptest::collection::vec(-1e6..1e6f64, 0..50),
            b in proptest::collection::vec(-1e6..1e6f64, 0..50),
        ) {
            let mut merged: RunningStats = a.iter().copied().collect();
            let other: RunningStats = b.iter().copied().collect();
            merged.merge(&other);
            let seq: RunningStats = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(merged.count(), seq.count());
            prop_assert!((merged.mean() - seq.mean()).abs() <= 1e-6 * seq.mean().abs().max(1.0));
            prop_assert!((merged.variance() - seq.variance()).abs()
                <= 1e-6 * seq.variance().abs().max(1.0));
        }

        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e9..1e9f64, 0..200)) {
            let s: RunningStats = xs.into_iter().collect();
            prop_assert!(s.variance() >= 0.0);
        }
    }
}
