//! Time-weighted averages of piecewise-constant signals.
//!
//! Utilization and reserved bandwidth in the MBAC experiments are
//! piecewise-constant in time (they change only at call arrivals, departures
//! and renegotiations). [`TimeWeighted`] integrates such a signal exactly.

use serde::{Deserialize, Serialize};

/// Exact integrator for a piecewise-constant signal observed at its change
/// points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: f64,
    last_time: f64,
    value: f64,
    integral: f64,
    min: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start observing at `time` with initial `value`.
    pub fn new(time: f64, value: f64) -> Self {
        Self {
            start: time,
            last_time: time,
            value,
            integral: 0.0,
            min: value,
            max: value,
        }
    }

    /// Record that the signal changed to `value` at `time`.
    ///
    /// # Panics
    /// Panics if `time` moves backwards.
    pub fn set(&mut self, time: f64, value: f64) {
        self.advance(time);
        self.value = value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Record that the signal changed by `delta` at `time`.
    pub fn add(&mut self, time: f64, delta: f64) {
        let v = self.value + delta;
        self.set(time, v);
    }

    /// Advance the clock without changing the value.
    pub fn advance(&mut self, time: f64) {
        assert!(
            time >= self.last_time - 1e-9,
            "time must not move backwards: {time} < {}",
            self.last_time
        );
        let time = time.max(self.last_time);
        self.integral += self.value * (time - self.last_time);
        self.last_time = time;
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Time average over `[start, time]` (the current value extends to
    /// `time`). Returns the current value if no time has elapsed.
    pub fn average(&mut self, time: f64) -> f64 {
        self.advance(time);
        let span = self.last_time - self.start;
        if span > 0.0 {
            self.integral / span
        } else {
            self.value
        }
    }

    /// Smallest value observed.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Integral of the signal so far (up to the last advance).
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_a_step_signal() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.set(2.0, 3.0); // value 1 for 2s
        tw.set(4.0, 0.0); // value 3 for 2s
                          // value 0 for 4s
        assert!((tw.average(8.0) - (2.0 + 6.0) / 8.0).abs() < 1e-12);
        assert_eq!(tw.min(), 0.0);
        assert_eq!(tw.max(), 3.0);
    }

    #[test]
    fn add_tracks_deltas() {
        let mut tw = TimeWeighted::new(10.0, 0.0);
        tw.add(11.0, 5.0);
        tw.add(12.0, -2.0);
        assert_eq!(tw.value(), 3.0);
        // 0 for 1s, 5 for 1s, 3 for 1s => avg 8/3.
        assert!((tw.average(13.0) - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_span_average_is_current_value() {
        let mut tw = TimeWeighted::new(5.0, 7.0);
        assert_eq!(tw.average(5.0), 7.0);
    }

    #[test]
    fn repeated_average_is_stable() {
        let mut tw = TimeWeighted::new(0.0, 2.0);
        tw.set(1.0, 4.0);
        let a1 = tw.average(2.0);
        let a2 = tw.average(2.0);
        assert_eq!(a1, a2);
        assert!((a1 - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_reversal_panics() {
        let mut tw = TimeWeighted::new(1.0, 0.0);
        tw.set(0.5, 1.0);
    }
}
