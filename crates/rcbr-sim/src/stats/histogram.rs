//! Histograms and discrete bandwidth-level distributions.
//!
//! [`DiscreteDistribution`] is the traffic descriptor of Section VI: "given
//! a renegotiation schedule, we can compute the empirical distribution
//! (histogram) of bandwidth requirements throughout the lifetime of a call,
//! i.e. the fraction of time p_j that a bandwidth level r_j is needed".

use serde::{Deserialize, Serialize};

/// A fixed-width-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be nonempty");
        assert!(bins > 0, "histogram must have at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "observation must not be NaN");
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Counts per bin (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fold another histogram's counts into this one, so per-worker
    /// histograms can be combined after a parallel run. Merging is
    /// commutative and associative (integer adds), so the combined result
    /// is identical no matter how the work was partitioned.
    ///
    /// # Panics
    /// Panics if the two histograms have different ranges or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different binnings"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) by linear interpolation
    /// within the containing bin. Under/overflow observations clamp to the
    /// range endpoints.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return self.lo;
        }
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let frac = (target - cum) / c as f64;
                return self.lo + w * (i as f64 + frac);
            }
            cum = next;
        }
        self.hi
    }
}

/// A normalized probability distribution over discrete bandwidth levels:
/// the Section VI traffic descriptor `{(r_j, p_j)}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDistribution {
    levels: Vec<f64>,
    probs: Vec<f64>,
}

impl DiscreteDistribution {
    /// Build from `(level, weight)` pairs; weights are normalized to sum
    /// to 1. Pairs with zero weight are kept (they carry grid information).
    ///
    /// # Panics
    /// Panics if empty, if any weight is negative, or if all weights are 0.
    pub fn from_weights(pairs: &[(f64, f64)]) -> Self {
        assert!(
            !pairs.is_empty(),
            "distribution must have at least one level"
        );
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(
            pairs.iter().all(|&(_, w)| w >= 0.0) && total > 0.0,
            "weights must be nonnegative with positive sum"
        );
        Self {
            levels: pairs.iter().map(|&(r, _)| r).collect(),
            probs: pairs.iter().map(|&(_, w)| w / total).collect(),
        }
    }

    /// Bandwidth levels `r_j`.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Probabilities `p_j` (sum to 1).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the distribution has no levels (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Iterate over `(r_j, p_j)`.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.levels.iter().copied().zip(self.probs.iter().copied())
    }

    /// Mean `E[R] = sum p_j r_j`.
    pub fn mean(&self) -> f64 {
        self.iter().map(|(r, p)| r * p).sum()
    }

    /// Largest level with positive probability.
    pub fn peak(&self) -> f64 {
        self.iter()
            .filter(|&(_, p)| p > 0.0)
            .map(|(r, _)| r)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Variance of the level.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.iter().map(|(r, p)| p * (r - m) * (r - m)).sum()
    }

    /// Log moment generating function `Λ(s) = ln Σ p_j e^{s r_j}`,
    /// computed in a numerically safe way (log-sum-exp).
    pub fn log_mgf(&self, s: f64) -> f64 {
        let max_exp = self
            .iter()
            .filter(|&(_, p)| p > 0.0)
            .map(|(r, _)| s * r)
            .fold(f64::NEG_INFINITY, f64::max);
        if !max_exp.is_finite() {
            return max_exp;
        }
        let sum: f64 = self
            .iter()
            .filter(|&(_, p)| p > 0.0)
            .map(|(r, p)| p * (s * r - max_exp).exp())
            .sum();
        max_exp + sum.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(5.0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record((i % 100) as f64);
        }
        let q10 = h.quantile(0.1);
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        assert!(q10 < q50 && q50 < q90);
        assert!((q50 - 50.0).abs() < 2.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let mut whole = Histogram::new(0.0, 10.0, 5);
        let mut left = Histogram::new(0.0, 10.0, 5);
        let mut right = Histogram::new(0.0, 10.0, 5);
        for i in 0..100 {
            let x = (i as f64) * 0.17 - 2.0;
            whole.record(x);
            if i % 2 == 0 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.bins(), whole.bins());
        assert_eq!(left.underflow(), whole.underflow());
        assert_eq!(left.overflow(), whole.overflow());
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    #[should_panic(expected = "different binnings")]
    fn merge_rejects_mismatched_binning() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_quantile() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn distribution_normalizes() {
        let d = DiscreteDistribution::from_weights(&[(1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(d.probs(), &[0.5, 0.5]);
        assert_eq!(d.mean(), 2.0);
        assert_eq!(d.peak(), 3.0);
        assert_eq!(d.variance(), 1.0);
    }

    #[test]
    fn zero_weight_levels_do_not_affect_peak() {
        let d = DiscreteDistribution::from_weights(&[(1.0, 1.0), (100.0, 0.0)]);
        assert_eq!(d.peak(), 1.0);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn log_mgf_known_values() {
        let d = DiscreteDistribution::from_weights(&[(0.0, 0.5), (1.0, 0.5)]);
        // Λ(s) = ln(0.5 + 0.5 e^s); Λ(0) = 0.
        assert!((d.log_mgf(0.0)).abs() < 1e-12);
        assert!((d.log_mgf(1.0) - (0.5 + 0.5 * 1.0f64.exp()).ln()).abs() < 1e-12);
        // Large s: dominated by the peak level => Λ(s) ≈ s*1 + ln 0.5.
        let s = 700.0;
        assert!((d.log_mgf(s) - (s + 0.5f64.ln())).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn log_mgf_is_convex_and_zero_at_origin(
            pairs in proptest::collection::vec((0.0..1e3f64, 0.01..1.0f64), 1..6),
            s in -5.0..5.0f64,
            ds in 0.01..1.0f64,
        ) {
            let d = DiscreteDistribution::from_weights(&pairs);
            prop_assert!(d.log_mgf(0.0).abs() < 1e-9);
            // Midpoint convexity.
            let a = d.log_mgf(s);
            let b = d.log_mgf(s + 2.0 * ds);
            let mid = d.log_mgf(s + ds);
            prop_assert!(mid <= 0.5 * (a + b) + 1e-9);
        }

        #[test]
        fn quantile_stays_in_range(
            xs in proptest::collection::vec(-50.0..150.0f64, 1..200),
            q in 0.0..1.0f64,
        ) {
            let mut h = Histogram::new(0.0, 100.0, 20);
            for x in xs { h.record(x); }
            let v = h.quantile(q);
            prop_assert!((0.0..=100.0).contains(&v));
        }
    }
}
