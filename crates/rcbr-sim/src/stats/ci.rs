//! Confidence intervals and the paper's replication stopping rules.
//!
//! Two rules appear in the paper:
//!
//! * **Section V-B** (the SMG experiments): "we repeat the simulations until
//!   the sample standard deviation of the estimate is less than 20% of the
//!   estimate" — i.e. the *standard error of the mean* must drop below a
//!   fraction of the mean.
//! * **Section VI** (the MBAC experiments): "we collect samples until the
//!   95% confidence interval for both probabilities is sufficiently small
//!   with respect to the estimated value (within 20%) ... we also stop if
//!   the target failure probability lies to the right of the confidence
//!   interval, i.e. if we are confident that the actual failure probability
//!   is lower than the target."
//!
//! [`StoppingRule`] implements both, and [`ConfidenceInterval`] provides the
//! Student-t interval they are built from.

use super::RunningStats;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo()..=self.hi()).contains(&x)
    }

    /// 95% Student-t interval for the mean of `stats`.
    ///
    /// Returns `None` with fewer than two observations (no variance
    /// estimate exists).
    pub fn t95(stats: &RunningStats) -> Option<ConfidenceInterval> {
        if stats.count() < 2 {
            return None;
        }
        let df = (stats.count() - 1) as usize;
        Some(ConfidenceInterval {
            mean: stats.mean(),
            half_width: t_critical_95(df) * stats.std_error(),
            level: 0.95,
        })
    }
}

/// Two-sided 97.5th-percentile critical value of Student's t with `df`
/// degrees of freedom (so the two-sided interval has 95% coverage).
///
/// Exact table values for small `df`, the normal quantile 1.96 in the limit,
/// and a standard asymptotic correction in between — accurate to better than
/// 0.3% everywhere, which is far below the 20% tolerances the stopping rules
/// use.
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        // Cornish–Fisher-style expansion around the normal quantile.
        let z = 1.959_963_984_540_054;
        let d = df as f64;
        z + (z * z * z + z) / (4.0 * d)
            + (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / (96.0 * d * d)
    }
}

/// What a [`StoppingRule`] says after each batch of samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopDecision {
    /// Keep sampling.
    Continue,
    /// The relative-precision criterion is met.
    Precise,
    /// The estimate is confidently below the target (Section VI early exit).
    BelowTarget,
    /// The sample budget was exhausted before either criterion was met.
    BudgetExhausted,
}

impl StopDecision {
    /// Whether sampling should stop.
    pub fn should_stop(&self) -> bool {
        !matches!(self, StopDecision::Continue)
    }
}

/// The paper's replication stopping rule.
///
/// Configured with a relative precision (`0.20` in the paper), an optional
/// target the estimate may be confidently below, and a hard sample budget so
/// degenerate workloads cannot loop forever.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoppingRule {
    /// Required relative half-width (Section VI) or relative standard error
    /// (Section V-B) — see `use_ci`.
    pub relative_precision: f64,
    /// If `true`, compare the 95% CI half-width to the mean (Section VI
    /// rule); if `false`, compare the standard error to the mean (Section
    /// V-B rule).
    pub use_ci: bool,
    /// Early exit when the whole CI lies below this target (e.g. the QoS
    /// threshold 1e-3).
    pub below_target: Option<f64>,
    /// Minimum number of samples before any decision other than
    /// `BudgetExhausted` is allowed.
    pub min_samples: u64,
    /// Hard cap on samples.
    pub max_samples: u64,
}

impl StoppingRule {
    /// The Section V-B rule: standard error within `relative_precision` of
    /// the mean.
    pub fn relative_std_error(relative_precision: f64) -> Self {
        Self {
            relative_precision,
            use_ci: false,
            below_target: None,
            min_samples: 5,
            max_samples: u64::MAX,
        }
    }

    /// The Section VI rule: 95% CI half-width within `relative_precision`
    /// of the mean, with early exit below `target`.
    pub fn ci_with_target(relative_precision: f64, target: f64) -> Self {
        Self {
            relative_precision,
            use_ci: true,
            below_target: Some(target),
            min_samples: 5,
            max_samples: u64::MAX,
        }
    }

    /// Replace the sample budget.
    pub fn with_max_samples(mut self, max: u64) -> Self {
        self.max_samples = max;
        self
    }

    /// Replace the minimum sample count.
    pub fn with_min_samples(mut self, min: u64) -> Self {
        self.min_samples = min;
        self
    }

    /// Evaluate the rule against the accumulated replications.
    pub fn evaluate(&self, stats: &RunningStats) -> StopDecision {
        if stats.count() >= self.max_samples {
            return StopDecision::BudgetExhausted;
        }
        if stats.count() < self.min_samples.max(2) {
            return StopDecision::Continue;
        }
        if let Some(target) = self.below_target {
            if let Some(ci) = ConfidenceInterval::t95(stats) {
                if ci.hi() < target {
                    return StopDecision::BelowTarget;
                }
            }
        }
        let mean = stats.mean().abs();
        if mean == 0.0 {
            // An all-zero estimate (e.g. no losses observed at all) can never
            // satisfy a relative criterion; defer to the budget / target.
            return StopDecision::Continue;
        }
        let spread = if self.use_ci {
            match ConfidenceInterval::t95(stats) {
                Some(ci) => ci.half_width,
                None => return StopDecision::Continue,
            }
        } else {
            stats.std_error()
        };
        if spread <= self.relative_precision * mean {
            StopDecision::Precise
        } else {
            StopDecision::Continue
        }
    }

    /// Drive `sample` until the rule fires; returns the accumulated stats
    /// and the final decision.
    pub fn run(&self, mut sample: impl FnMut() -> f64) -> (RunningStats, StopDecision) {
        let mut stats = RunningStats::new();
        loop {
            let d = self.evaluate(&stats);
            if d.should_stop() {
                return (stats, d);
            }
            stats.push(sample());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_matches_known_values() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        // Large df approaches the normal quantile.
        assert!((t_critical_95(1000) - 1.962).abs() < 0.002);
        assert_eq!(t_critical_95(0), f64::INFINITY);
        // df=31 uses the expansion; must be close to the true 2.040.
        assert!((t_critical_95(31) - 2.040).abs() < 0.005);
    }

    #[test]
    fn ci_of_constant_sample_is_degenerate() {
        let s: RunningStats = [5.0; 10].into_iter().collect();
        let ci = ConfidenceInterval::t95(&s).unwrap();
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(5.0));
        assert!(!ci.contains(5.1));
    }

    #[test]
    fn ci_requires_two_samples() {
        let s: RunningStats = [1.0].into_iter().collect();
        assert!(ConfidenceInterval::t95(&s).is_none());
    }

    #[test]
    fn std_error_rule_stops_on_tight_sample() {
        let rule = StoppingRule::relative_std_error(0.2);
        // 10 identical observations: std error 0, well within 20%.
        let s: RunningStats = [3.0; 10].into_iter().collect();
        assert_eq!(rule.evaluate(&s), StopDecision::Precise);
    }

    #[test]
    fn std_error_rule_continues_on_wide_sample() {
        let rule = StoppingRule::relative_std_error(0.2);
        let s: RunningStats = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0].into_iter().collect();
        assert_eq!(rule.evaluate(&s), StopDecision::Continue);
    }

    #[test]
    fn below_target_early_exit() {
        let rule = StoppingRule::ci_with_target(0.2, 1e-3);
        // Noisy but clearly far below the target.
        let s: RunningStats = [1e-6, 2e-6, 1.5e-6, 0.5e-6, 1e-6, 2e-6, 1e-6, 1.2e-6]
            .into_iter()
            .collect();
        assert_eq!(rule.evaluate(&s), StopDecision::BelowTarget);
    }

    #[test]
    fn budget_exhaustion_wins() {
        let rule = StoppingRule::relative_std_error(0.0001).with_max_samples(10);
        let mut k = 0.0;
        let (stats, d) = rule.run(|| {
            k += 1.0;
            k % 2.0 // alternating 1, 0: never precise
        });
        assert_eq!(d, StopDecision::BudgetExhausted);
        assert_eq!(stats.count(), 10);
    }

    #[test]
    fn all_zero_estimate_defers_to_budget() {
        let rule = StoppingRule::ci_with_target(0.2, 1e-3).with_max_samples(50);
        let (stats, d) = rule.run(|| 0.0);
        // Zero mean: the relative rule can't fire, but zero is confidently
        // below target once the CI exists... CI is [0,0], hi()=0 < 1e-3.
        assert!(matches!(d, StopDecision::BelowTarget));
        assert!(stats.count() >= 5);
    }

    #[test]
    fn min_samples_is_respected() {
        let rule = StoppingRule::relative_std_error(0.5).with_min_samples(20);
        let s: RunningStats = [1.0; 10].into_iter().collect();
        assert_eq!(rule.evaluate(&s), StopDecision::Continue);
    }
}
