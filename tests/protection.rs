//! Section II's motivation, reproduced as tests: the four-way bind of
//! one-shot descriptors, and RCBR's protection property.
//!
//! "With VBR or guaranteed service, we can deal with sustained bursts by
//! choosing a large token bucket ... The problem with this approach is
//! that ... sources have no assurance that their data will not be lost if
//! bursts coincide. We call this loss of protection."

use rcbr_suite::prelude::*;

/// A well-behaved source: constant 100 kb/s.
fn smooth_source(frames: usize) -> FrameTrace {
    FrameTrace::new(1.0 / 24.0, vec![100_000.0 / 24.0; frames])
}

/// A misbehaving source: long sustained bursts at 1 Mb/s.
fn bursty_source(frames: usize) -> FrameTrace {
    let bits: Vec<f64> = (0..frames)
        .map(|i| {
            if (i / 240) % 2 == 0 {
                1_000_000.0 / 24.0
            } else {
                10_000.0 / 24.0
            }
        })
        .collect();
    FrameTrace::new(1.0 / 24.0, bits)
}

#[test]
fn unrestricted_sharing_loses_protection() {
    // Both sources feed one shared buffer drained at the sum of their
    // "fair" rates. The burster's overload spills onto the smooth source:
    // shared-queue loss is indiscriminate.
    let frames = 4800;
    let smooth = smooth_source(frames);
    let bursty = bursty_source(frames);
    let tau = smooth.frame_interval();
    // Fair shares: smooth gets its exact rate, bursty gets 1.2x its mean.
    let service = (100_000.0 + 1.2 * bursty.mean_rate()) * tau;
    let mut shared = FluidQueue::new(400_000.0);
    let mut lost_total = 0.0;
    for t in 0..frames {
        let out = shared.offer(smooth.bits(t) + bursty.bits(t), service);
        lost_total += out.lost;
    }
    // Losses happen, and in a FIFO fluid queue they are proportionally
    // shared — the smooth source loses bits *through no fault of its own*.
    assert!(lost_total > 0.0, "the shared queue must overflow");
    let smooth_share = smooth.total_bits() / (smooth.total_bits() + bursty.total_bits());
    let smooth_lost = lost_total * smooth_share;
    assert!(
        smooth_lost > 0.001 * smooth.total_bits(),
        "the smooth source must suffer collateral loss: {smooth_lost}"
    );
}

#[test]
fn rcbr_isolates_the_well_behaved_source() {
    // Same pair under RCBR: each source's traffic enters the network at
    // its own granted CBR rate; the burster's overload lands in its *own*
    // buffer. The smooth source never loses a bit.
    let frames = 4800;
    let smooth = smooth_source(frames);
    let bursty = bursty_source(frames);

    // The smooth source reserves its constant rate; the burster reserves
    // 1.2x its mean and must eat its own overload.
    let smooth_sched = Schedule::constant(smooth.frame_interval(), frames, 100_000.0);
    let bursty_sched =
        Schedule::constant(bursty.frame_interval(), frames, 1.2 * bursty.mean_rate());

    let m_smooth = smooth_sched.replay(&smooth, 50_000.0);
    let m_bursty = bursty_sched.replay(&bursty, 400_000.0);
    assert_eq!(
        m_smooth.loss_fraction, 0.0,
        "protection: smooth source untouched"
    );
    assert!(
        m_bursty.loss_fraction > 0.0,
        "the burster pays for its own burst"
    );
}

#[test]
fn one_shot_descriptor_forces_a_bad_choice() {
    // The Section II bind for a multiple-time-scale source with a single
    // drain rate: near-mean rate needs huge buffers; small buffers need
    // near-peak rate. RCBR escapes with both small.
    let mut rng = SimRng::from_seed(31);
    let trace = SyntheticMpegSource::star_wars_like().generate(14_400, &mut rng);
    let eps = 1e-6;
    let codec_buffer = 300_000.0;

    // Choice 1: small buffer => rate must be several times the mean.
    let rho_small = min_rate_for_buffer(&trace, codec_buffer, eps);
    assert!(rho_small > 3.0 * trace.mean_rate());

    // Choice 2: near-mean rate => the buffer must grow by orders of
    // magnitude.
    let near_mean = 1.1 * trace.mean_rate();
    assert!(
        scenario_a_loss(&trace, 30.0 * codec_buffer, near_mean) > eps,
        "even 30x the codec buffer is not enough near the mean rate"
    );

    // RCBR: the codec buffer and a modest mean reservation suffice.
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
    let schedule = OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(3e5), codec_buffer)
            .with_q_resolution(codec_buffer / 1000.0),
    )
    .optimize(&trace)
    .unwrap();
    assert!(schedule.is_feasible(&trace, codec_buffer));
    assert!(
        schedule.mean_service_rate() < 1.1 * trace.mean_rate(),
        "RCBR mean reservation {} should be within 10% of the source mean {}",
        schedule.mean_service_rate(),
        trace.mean_rate()
    );
}
