//! Online (interactive) sources over the signaling substrate, including
//! fault injection: the Section III mechanisms working together.

use rcbr_suite::prelude::*;

fn video(seed: u64, frames: usize) -> FrameTrace {
    let mut rng = SimRng::from_seed(seed);
    SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
}

fn fig2_policy(trace: &FrameTrace, delta: f64) -> Ar1Policy {
    let tau = trace.frame_interval();
    Ar1Policy::new(Ar1Config::fig2(delta, trace.mean_rate(), tau), tau)
}

#[test]
fn online_source_over_clean_network_keeps_losses_low() {
    let trace = video(1, 4800);
    let buffer = 300_000.0;
    let mut switches = vec![Switch::new(&[155_000_000.0])];
    let path = Path::new(vec![0], 0.0);
    let mut conn = RcbrConnection::establish(&mut switches, path, 1, trace.mean_rate()).unwrap();
    let plane = FaultPlane::transparent();
    let policy = fig2_policy(&trace, 64_000.0);
    let mut source = RcbrSource::online(Box::new(policy), trace.frame_interval(), buffer);

    for t in 0..trace.len() {
        source.step(trace.bits(t), |_, want| {
            conn.renegotiate(&mut switches, &plane, want).unwrap()
        });
    }
    assert!(source.total_requests() > 10, "the policy must adapt");
    assert_eq!(source.failed_requests(), 0);
    assert!(
        source.loss_fraction() < 2e-3,
        "clean network loss too high: {}",
        source.loss_fraction()
    );
    assert_eq!(conn.drift(&switches), 0.0);
}

#[test]
fn signaling_loss_drifts_and_resync_repairs() {
    let trace = video(2, 2400);
    let buffer = 300_000.0;
    let mut switches = vec![Switch::new(&[155_000_000.0])];
    let path = Path::new(vec![0], 0.0);
    let mut conn = RcbrConnection::establish(&mut switches, path, 1, trace.mean_rate())
        .unwrap()
        .with_config(ServiceConfig::new(0)); // no automatic resync
    let plane = FaultPlane::new(FaultConfig::drop_only(0.3, 17));
    let policy = fig2_policy(&trace, 100_000.0);
    let mut source = RcbrSource::online(Box::new(policy), trace.frame_interval(), buffer);

    let mut saw_drift = false;
    for t in 0..trace.len() {
        source.step(trace.bits(t), |_, want| {
            conn.renegotiate(&mut switches, &plane, want)
                .unwrap_or(false)
        });
        if conn.drift(&switches) > 0.0 {
            saw_drift = true;
        }
    }
    assert!(conn.lost_cells() > 0);
    assert!(saw_drift, "30% signaling loss must cause visible drift");
    conn.resync(&mut switches).unwrap();
    assert_eq!(conn.drift(&switches), 0.0, "resync must repair all hops");
}

#[test]
fn gop_aware_policy_works_end_to_end() {
    let trace = video(3, 4800);
    let buffer = 300_000.0;
    let tau = trace.frame_interval();
    let ar1 = Ar1Config::fig2(64_000.0, trace.mean_rate(), tau);
    let gop = GopAwarePolicy::new(GopAwareConfig { ar1, gop_len: 12 }, tau);
    let frame = Ar1Policy::new(ar1, tau);

    let run_policy = |policy: Box<dyn OnlinePolicy>| {
        let mut switches = vec![Switch::new(&[155_000_000.0])];
        let path = Path::new(vec![0], 0.0);
        let mut conn =
            RcbrConnection::establish(&mut switches, path, 1, trace.mean_rate()).unwrap();
        let plane = FaultPlane::transparent();
        let mut source = RcbrSource::online(policy, tau, buffer);
        for t in 0..trace.len() {
            source.step(trace.bits(t), |_, want| {
                conn.renegotiate(&mut switches, &plane, want).unwrap()
            });
        }
        (source.total_requests(), source.loss_fraction())
    };

    let (req_gop, loss_gop) = run_policy(Box::new(gop));
    let (req_frame, loss_frame) = run_policy(Box::new(frame));
    assert!(
        req_gop < req_frame,
        "GoP-aware should renegotiate less: {req_gop} vs {req_frame}"
    );
    assert!(loss_gop < 1e-2, "gop loss {loss_gop}");
    assert!(loss_frame < 1e-2, "frame loss {loss_frame}");
}

#[test]
fn token_bucket_policing_passes_scheduled_traffic() {
    // The stepwise-CBR output of an RCBR source conforms to a token bucket
    // at (peak schedule rate, one slot of burst) — the "trivially simple"
    // descriptor of Section VI.
    let trace = video(4, 1200);
    let buffer = 300_000.0;
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 10);
    let schedule = OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
            .with_q_resolution(buffer / 500.0),
    )
    .optimize(&trace)
    .unwrap();
    // The network-facing stream: rate_at(t) * tau bits per slot.
    let tau = trace.frame_interval();
    let shaped: Vec<f64> = (0..trace.len())
        .map(|t| schedule.rate_at(t) * tau)
        .collect();
    let shaped_trace = FrameTrace::new(tau, shaped);
    let peak = schedule.peak_service_rate();
    let mut bucket = TokenBucket::new(peak, peak * tau + 1.0);
    assert_eq!(bucket.police(&shaped_trace), 0);
}
