//! End-to-end stored-video pipeline: synthetic trace → offline optimal
//! schedule → RCBR source streaming over a multi-hop ATM path.

use rcbr_suite::prelude::*;

fn video(seed: u64, frames: usize) -> FrameTrace {
    let mut rng = SimRng::from_seed(seed);
    SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
}

fn optimal_schedule(trace: &FrameTrace, buffer: f64) -> Schedule {
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 10);
    OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
            .with_q_resolution(buffer / 500.0),
    )
    .optimize(trace)
    .expect("grid covers the trace")
}

#[test]
fn stored_video_streams_losslessly_over_the_network() {
    let buffer = 300_000.0;
    let trace = video(42, 1440); // one minute
    let schedule = optimal_schedule(&trace, buffer);
    assert!(schedule.is_feasible(&trace, buffer));

    // Three switches with ample capacity.
    let mut switches: Vec<Switch> = (0..3).map(|_| Switch::new(&[155_000_000.0])).collect();
    let path = Path::new(vec![0, 1, 2], 0.0005);
    let mut conn = RcbrConnection::establish(&mut switches, path, 7, schedule.rate_at(0)).unwrap();
    let plane = FaultPlane::transparent();
    let mut source = RcbrSource::offline(schedule.clone(), buffer);

    for t in 0..trace.len() {
        source.step(trace.bits(t), |_, want| {
            conn.renegotiate(&mut switches, &plane, want).unwrap()
        });
    }

    assert_eq!(
        source.loss_fraction(),
        0.0,
        "ample capacity must be lossless"
    );
    assert_eq!(source.failed_requests(), 0);
    assert_eq!(
        source.total_requests() as usize,
        schedule.num_renegotiations()
    );
    // Switch state tracks the source (up to the float residue that
    // delta-encoding accumulates — exactly what resync exists to clean up).
    assert!(
        conn.drift(&switches) < 1e-6,
        "drift {}",
        conn.drift(&switches)
    );
    conn.resync(&mut switches).unwrap();
    assert_eq!(conn.drift(&switches), 0.0);
    for sw in &switches {
        assert_eq!(sw.vci_rate(7), Some(conn.believed_rate()));
    }
    conn.teardown(&mut switches).unwrap();
    for sw in &switches {
        assert_eq!(sw.port(0).unwrap().reserved(), 0.0);
    }
}

#[test]
fn schedule_survives_json_roundtrip_and_replays_identically() {
    let trace = video(44, 720);
    let schedule = optimal_schedule(&trace, 300_000.0);
    let json = serde_json::to_string(&schedule).unwrap();
    let back: Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(schedule, back);
    let m1 = schedule.replay(&trace, 300_000.0);
    let m2 = back.replay(&trace, 300_000.0);
    assert_eq!(m1.loss_fraction, m2.loss_fraction);
    assert_eq!(m1.peak_backlog, m2.peak_backlog);
}
