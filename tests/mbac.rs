//! Section VI end-to-end: the four admission controllers under dynamic
//! call arrivals, reproducing the paper's qualitative findings.

use rcbr_suite::prelude::*;

/// A compact RCBR "call": 90 s, three bandwidth levels.
fn base_schedule() -> Schedule {
    let mut rates = vec![150_000.0; 50];
    rates.extend(vec![450_000.0; 25]);
    rates.extend(vec![150_000.0; 10]);
    rates.extend(vec![900_000.0; 5]);
    Schedule::from_rates(1.0, &rates)
}

fn run(
    controller: &mut dyn rcbr_suite::admission::AdmissionController,
    capacity_x_mean: f64,
    seed: u64,
) -> rcbr_suite::admission::CallSimReport {
    let schedule = base_schedule();
    let dist = schedule.empirical_distribution();
    let capacity = capacity_x_mean * dist.mean();
    // Offered load 1.5x so admission is binding.
    let arrival = 1.5 * capacity / dist.mean() / schedule.duration();
    let cfg = CallSimConfig::new(capacity, arrival, 1e-3, seed).with_max_windows(50);
    CallSim::new(&schedule, cfg).run(controller)
}

#[test]
fn memoryless_misses_target_on_small_links_but_improves_with_size() {
    // Fig. 7's shape: gross violation at small capacity, much better at
    // large capacity.
    let mut small = Memoryless::new(1e-3);
    let r_small = run(&mut small, 15.0, 1);
    assert!(
        r_small.failure_probability > 1e-2,
        "small link should violate grossly, got {}",
        r_small.failure_probability
    );

    let mut large = Memoryless::new(1e-3);
    let r_large = run(&mut large, 300.0, 2);
    assert!(
        r_large.failure_probability < r_small.failure_probability / 5.0,
        "large link must be far closer to target: {} vs {}",
        r_large.failure_probability,
        r_small.failure_probability
    );
}

#[test]
fn memory_restores_robustness_at_comparable_utilization() {
    let mut ml = Memoryless::new(1e-3);
    let r_ml = run(&mut ml, 15.0, 3);
    let mut wm = WithMemory::new(1e-3, 300.0);
    let r_wm = run(&mut wm, 15.0, 3);
    assert!(
        r_wm.failure_probability < r_ml.failure_probability / 3.0,
        "memory must cut failures: {} vs {}",
        r_wm.failure_probability,
        r_ml.failure_probability
    );
    // It should not give away the multiplexing gain to do so: utilization
    // within a factor of the perfect controller's.
    let dist = base_schedule().empirical_distribution();
    let mut pk = PerfectKnowledge::new(dist, 1e-3);
    let r_pk = run(&mut pk, 15.0, 3);
    assert!(
        r_wm.utilization > 0.6 * r_pk.utilization,
        "memory utilization {} too far below perfect {}",
        r_wm.utilization,
        r_pk.utilization
    );
}

#[test]
fn perfect_knowledge_meets_the_target_within_noise() {
    let dist = base_schedule().empirical_distribution();
    let mut pk = PerfectKnowledge::new(dist, 1e-3);
    let r = run(&mut pk, 50.0, 4);
    assert!(
        r.failure_probability <= 2e-2,
        "perfect knowledge should be near target, got {}",
        r.failure_probability
    );
    assert!(
        r.utilization > 0.2,
        "and it must actually admit calls: {r:?}"
    );
}

#[test]
fn peak_rate_is_safe_but_wasteful() {
    let dist = base_schedule().empirical_distribution();
    let mut peak = PeakRate::new(dist.peak());
    let r_peak = run(&mut peak, 50.0, 5);
    assert_eq!(r_peak.failure_probability, 0.0);
    let mut pk = PerfectKnowledge::new(dist, 1e-3);
    let r_pk = run(&mut pk, 50.0, 5);
    assert!(
        r_pk.utilization > 1.3 * r_peak.utilization,
        "statistical admission must beat peak-rate utilization: {} vs {}",
        r_pk.utilization,
        r_peak.utilization
    );
}

#[test]
fn failure_probability_rises_with_offered_load() {
    // The paper: "the renegotiation failure probability increases with the
    // offered load ... more opportunities to go wrong".
    let schedule = base_schedule();
    let dist = schedule.empirical_distribution();
    let capacity = 15.0 * dist.mean();
    let mut probs = Vec::new();
    for load in [0.5, 1.5, 3.0] {
        let arrival = load * capacity / dist.mean() / schedule.duration();
        let cfg = CallSimConfig::new(capacity, arrival, 1e-3, 6).with_max_windows(40);
        let mut ml = Memoryless::new(1e-3);
        let r = CallSim::new(&schedule, cfg).run(&mut ml);
        probs.push(r.failure_probability);
    }
    assert!(
        probs[2] >= probs[0],
        "failure must not fall with load: {probs:?}"
    );
}

/// Section VI's opening argument, end-to-end: interactivity makes an
/// a-priori descriptor stale, and a measurement-based controller recovers
/// the capacity a conservative static descriptor wastes.
#[test]
fn interactivity_makes_static_descriptors_stale_and_mbac_recovers() {
    use rcbr_suite::traffic::interactive::{interactive_session, InteractiveConfig};

    // The pristine movie and its RCBR schedule (the a-priori descriptor).
    let mut rng = SimRng::from_seed(100);
    let movie = SyntheticMpegSource::star_wars_like().generate(2880, &mut rng);
    let buffer = 300_000.0;
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 12);
    let mk_schedule = |trace: &FrameTrace| {
        OfflineOptimizer::new(
            TrellisConfig::new(grid.clone(), CostModel::from_ratio(2e5), buffer)
                .with_drain_at_end()
                .with_q_resolution(buffer / 1000.0),
        )
        .optimize(trace)
        .expect("grid covers trace")
    };
    let pristine = mk_schedule(&movie);
    let stale_descriptor = pristine.empirical_distribution();

    // What viewers actually do: pause-heavy interactive sessions, which
    // demand *less* than the pristine schedule promises.
    let cfg = InteractiveConfig {
        mean_play: 20.0,
        mean_pause: 20.0,
        pause_bias: 0.9,
        ..InteractiveConfig::default()
    };
    let mut mix = Vec::new();
    for seed in 0..3 {
        let mut vr = SimRng::from_seed(200 + seed);
        let session = interactive_session(&movie, cfg, 2880, &mut vr);
        mix.push((mk_schedule(&session.trace), 1.0));
    }
    let true_mean: f64 = mix
        .iter()
        .map(|(s, _)| s.empirical_distribution().mean())
        .sum::<f64>()
        / mix.len() as f64;
    assert!(
        true_mean < 0.85 * stale_descriptor.mean(),
        "interactive sessions must be materially lighter: {true_mean} vs {}",
        stale_descriptor.mean()
    );

    // Run the mixed workload under (a) the static controller with the
    // stale descriptor and (b) the memory-based MBAC.
    let target = 1e-3;
    let capacity = 25.0 * stale_descriptor.mean();
    let arrival = 2.0 * capacity / true_mean / pristine.duration();
    let sim_cfg = CallSimConfig::new(capacity, arrival, target, 300).with_max_windows(40);
    let sim = CallSim::new_mixed(&mix, sim_cfg);

    let mut stale = PerfectKnowledge::new(stale_descriptor, target);
    let r_stale = sim.run(&mut stale);
    let mut mbac = WithMemory::new(target, 300.0);
    let r_mbac = sim.run(&mut mbac);

    // Both meet the target comfortably (the workload is lighter than the
    // stale descriptor claims)...
    assert!(r_stale.failure_probability <= 10.0 * target, "{r_stale:?}");
    assert!(r_mbac.failure_probability <= 10.0 * target, "{r_mbac:?}");
    // ...but measurement recovers utilization the stale descriptor wastes.
    assert!(
        r_mbac.utilization > 1.1 * r_stale.utilization,
        "MBAC should recover wasted capacity: {} vs {}",
        r_mbac.utilization,
        r_stale.utilization
    );
}
