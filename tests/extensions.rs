//! The extension modules working together: model fitting, optimal
//! smoothing, topology routing, latency sensitivity, and the empirical
//! effective bandwidth — the parts that go beyond the paper's published
//! results while staying inside its framework.

use rcbr_suite::core::latency::{offline_with_latency, online_with_latency};
use rcbr_suite::ldt::trace_equivalent_bandwidth;
use rcbr_suite::prelude::*;
use rcbr_suite::schedule::{min_peak_rate_bound, optimal_smoothing};
use rcbr_suite::traffic::fit::{fit_mts, MtsFitConfig};

fn video(seed: u64, frames: usize) -> FrameTrace {
    let mut rng = SimRng::from_seed(seed);
    SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
}

#[test]
fn fitted_model_predicts_the_measured_cbr_requirement() {
    // The analysis pipeline: trace -> fitted MTS model -> eq. (9) EB must
    // land near the trace's measured (sigma, rho) requirement.
    let trace = video(12, 43_200);
    let buffer = 300_000.0;
    let fit = fit_mts(
        &trace,
        MtsFitConfig {
            num_subchains: 3,
            slot_frames: 24,
        },
    );
    let qos = QosTarget::new(buffer, 1e-6);
    let (eb, _) = mts_equivalent_bandwidth(&fit.model, qos);
    let measured = min_rate_for_buffer(&trace, buffer, 1e-6);
    let ratio = eb / measured;
    assert!(
        (0.6..1.7).contains(&ratio),
        "fitted eq. (9) EB {eb} vs measured {measured} (ratio {ratio:.2})"
    );
    // And both far above the mean — the multiple-time-scale signature.
    assert!(eb > 2.0 * trace.mean_rate());
}

#[test]
fn empirical_eb_tracks_the_fitted_model() {
    let trace = video(13, 43_200);
    let qos = QosTarget::new(1_000_000.0, 1e-4);
    // Empirical effective bandwidth straight from the trace, blocks of
    // ~4 s (long enough to absorb GoP structure).
    let empirical = trace_equivalent_bandwidth(&trace, qos, 96);
    assert!(empirical > trace.mean_rate());
    assert!(empirical < trace.peak_rate());
    // It should be in the same regime as the (sigma, rho) requirement.
    let measured = min_rate_for_buffer(&trace, 1_000_000.0, 1e-4);
    let ratio = empirical / measured;
    assert!(
        (0.4..2.5).contains(&ratio),
        "empirical EB {empirical} vs sigma-rho {measured}"
    );
}

#[test]
fn smoothed_schedule_multiplexes_in_scenario_c() {
    // Optimal smoothing produces a valid (if renegotiation-heavy)
    // stepwise plan; it must drive the scenario (c) machinery losslessly
    // at its peak rate.
    let trace = video(14, 4800);
    let buffer = 300_000.0;
    let schedule = optimal_smoothing(&trace, buffer);
    assert!(schedule.is_feasible(&trace, buffer + 1e-6));
    // Smoothing drains by construction, so circular shifting is safe.
    assert!(schedule.replay(&trace, buffer + 1e-6).final_backlog <= 1e-6);
    let sim = StepwiseCbrMuxSim::new(
        &trace,
        &schedule,
        ScenarioCConfig {
            num_sources: 8,
            buffer_per_source: buffer + 1e-3,
        },
    );
    let mut rng = SimRng::from_seed(3);
    let out = sim.run_with_random_phasing(schedule.peak_service_rate(), &mut rng);
    assert_eq!(out.failures, 0, "{out:?}");
    assert!(out.loss_fraction < 1e-9, "{out:?}");
    // And its peak is the information-theoretic minimum.
    let bound = min_peak_rate_bound(&trace, buffer);
    assert!((schedule.peak_service_rate() - bound).abs() <= 1e-6 * bound);
}

#[test]
fn routed_connections_over_a_topology() {
    use rcbr_suite::net::Topology;
    // A 4-switch diamond; two video connections routed around each other.
    let mut topo = Topology::new(4, 0.0005);
    topo.add_duplex(0, 1, 0);
    topo.add_duplex(1, 3, 0);
    topo.add_duplex(0, 2, 0);
    topo.add_duplex(2, 3, 0);
    let mut switches: Vec<Switch> = (0..4).map(|_| Switch::new(&[2_000_000.0])).collect();

    // First connection takes the least-loaded route 0 -> 3.
    let r1 = topo.least_loaded_route(&switches, 0, 3).unwrap();
    let p1 = topo.route_to_path(&r1);
    let c1 = RcbrConnection::establish(&mut switches, p1, 1, 800_000.0).unwrap();
    // Second connection must route around the first (its middle hop is
    // heavily utilized now).
    let r2 = topo.least_loaded_route(&switches, 0, 3).unwrap();
    assert_eq!(r1.len(), r2.len());
    assert_ne!(
        r1[1], r2[1],
        "load balancing should pick the other middle hop"
    );
    let p2 = topo.route_to_path(&r2);
    let c2 = RcbrConnection::establish(&mut switches, p2, 2, 800_000.0).unwrap();
    assert_eq!(c1.drift(&switches), 0.0);
    assert_eq!(c2.drift(&switches), 0.0);
}

#[test]
fn latency_sweep_is_monotone_enough_and_offline_flat() {
    let trace = video(15, 9600);
    let buffer = 300_000.0;
    let tau = trace.frame_interval();
    let mk = || Ar1Policy::new(Ar1Config::fig2(64_000.0, trace.mean_rate(), tau), tau);
    let mut p0 = mk();
    let at0 = online_with_latency(&trace, &mut p0, buffer, 0.0);
    let mut p4 = mk();
    let at4 = online_with_latency(&trace, &mut p4, buffer, 4.0);
    assert!(
        at4.loss_fraction >= at0.loss_fraction,
        "loss must not improve with delay: {at4:?} vs {at0:?}"
    );

    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 10);
    let schedule = OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
            .with_q_resolution(buffer / 500.0),
    )
    .optimize(&trace)
    .unwrap();
    let off0 = offline_with_latency(&trace, &schedule, buffer, 0.0);
    let off9 = offline_with_latency(&trace, &schedule, buffer, 9.0);
    // Delay-invariant in every observable except the delay label itself.
    assert_eq!(off0.loss_fraction, off9.loss_fraction);
    assert_eq!(off0.peak_backlog, off9.peak_backlog);
    assert_eq!(off0.bandwidth_efficiency, off9.bandwidth_efficiency);
    assert_eq!(off0.requests, off9.requests);
}
