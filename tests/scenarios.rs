//! A miniature Fig. 6: the per-stream capacity needed by the three
//! scenarios must order the way the paper's SMG analysis predicts.

use rcbr_suite::prelude::*;

/// A deliberately multiple-time-scale workload: scenes alternate between
/// quiet and action with GoP-scale jitter on top.
fn mts_video(seed: u64, frames: usize) -> FrameTrace {
    let mut rng = SimRng::from_seed(seed);
    SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
}

#[test]
fn rcbr_captures_most_of_the_multiplexing_gain() {
    let buffer = 300_000.0;
    let trace = mts_video(7, 4800); // 200 s
    let eps = 1e-4; // loose target so the short trace resolves it

    // Scenario (a): static CBR — the sigma-rho value, independent of N.
    let c_a = min_rate_for_buffer(&trace, buffer, eps);

    // The offline schedule for scenario (c).
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 12);
    let schedule = OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
            .with_drain_at_end()
            .with_q_resolution(buffer / 500.0),
    )
    .optimize(&trace)
    .expect("grid covers the trace");

    let n = 24;
    let search = SearchConfig {
        target_loss: eps,
        relative_precision: 0.2,
        min_replications: 4,
        max_replications: 12,
        rate_tolerance: 0.05,
    };
    let mean = trace.mean_rate();

    // Scenario (b): shared buffer.
    let sim_b = SharedBufferSim::new(
        &trace,
        ScenarioBConfig {
            num_sources: n,
            buffer_per_source: buffer,
        },
    );
    let point_b = search_capacity(mean, c_a, &search, |rate, rep| {
        let mut rng = SimRng::from_seed(1000 + rep);
        sim_b.loss_with_random_phasing(rate, &mut rng)
    });

    // Scenario (c): RCBR bufferless multiplexing.
    let sim_c = StepwiseCbrMuxSim::new(
        &trace,
        &schedule,
        ScenarioCConfig {
            num_sources: n,
            buffer_per_source: buffer,
        },
    );
    let peak_sched = schedule.peak_service_rate();
    let point_c = search_capacity(mean, peak_sched.max(c_a), &search, |rate, rep| {
        let mut rng = SimRng::from_seed(2000 + rep);
        sim_c.run_with_random_phasing(rate, &mut rng).loss_fraction
    });

    // Orderings: multiplexing always beats static CBR, and the shared
    // buffer (which also captures fast-time-scale gain) beats RCBR.
    assert!(
        point_c.rate < 0.8 * c_a,
        "RCBR must need far less than static CBR: c_c = {} vs c_a = {}",
        point_c.rate,
        c_a
    );
    assert!(
        point_b.rate <= point_c.rate * 1.1,
        "the shared buffer cannot be worse: c_b = {} vs c_c = {}",
        point_b.rate,
        point_c.rate
    );
    // RCBR's asymptote is the inverse bandwidth efficiency of the
    // schedule; with N = 24 it should already be within ~2.2x of it.
    let asymptote = schedule.mean_service_rate();
    assert!(
        point_c.rate < 2.2 * asymptote,
        "c_c = {} vs asymptote {}",
        point_c.rate,
        asymptote
    );
    assert!(point_c.rate >= 0.95 * mean, "cannot beat the mean rate");
}

#[test]
fn scenario_losses_fall_with_capacity() {
    let buffer = 200_000.0;
    let trace = mts_video(9, 2400);
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 8);
    let schedule = OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
            .with_drain_at_end()
            .with_q_resolution(buffer / 500.0),
    )
    .optimize(&trace)
    .unwrap();
    let sim = StepwiseCbrMuxSim::new(
        &trace,
        &schedule,
        ScenarioCConfig {
            num_sources: 10,
            buffer_per_source: buffer,
        },
    );
    let mut rng = SimRng::from_seed(77);
    let offsets: Vec<usize> = (0..10).map(|_| rng.index(trace.len())).collect();
    let lo = sim.run(0.8 * trace.mean_rate(), &offsets);
    let hi = sim.run(schedule.peak_service_rate(), &offsets);
    assert!(lo.loss_fraction > hi.loss_fraction);
    assert_eq!(hi.failures, 0);
    assert!(lo.failures > 0);
}
