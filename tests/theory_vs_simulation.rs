//! Section V-A's theory checked against simulation:
//!
//! * the equivalent bandwidth bounds the simulated overflow probability;
//! * eq. (9): the whole MTS stream needs (almost) the drain rate of its
//!   worst subchain — buffering alone cannot exploit the slow time scale;
//! * the Chernoff estimate (eqs. (10)–(12)) upper-bounds the simulated
//!   bufferless-multiplexing failure frequency.

use rcbr_suite::prelude::*;
use rcbr_suite::sim::stats::DiscreteDistribution;

#[test]
fn equivalent_bandwidth_bounds_simulated_overflow() {
    // On/off source, 1 Mb/s peak, 30% duty cycle, 40 ms slots.
    let src = OnOffSource::new(0.12, 0.28, 1_000_000.0, 0.04).as_source();
    let buffer = 40_000.0;
    let qos = QosTarget::new(buffer, 1e-3);
    let eb = equivalent_bandwidth(&src, qos);
    assert!(eb > src.mean_rate() && eb < src.peak_rate());

    // Simulate the source through a buffer drained at the EB and measure
    // the fraction of time the backlog would exceed the buffer (infinite
    // queue, threshold-crossing frequency — the quantity the asymptotic
    // bounds).
    let mut rng = SimRng::from_seed(5);
    let trace = src.generate(400_000, &mut rng);
    let mut q = FluidQueue::unbounded();
    let mut over = 0u64;
    for t in 0..trace.len() {
        let out = q.offer(trace.bits(t), eb * 0.04);
        if out.backlog > buffer {
            over += 1;
        }
    }
    let p_over = over as f64 / trace.len() as f64;
    assert!(
        p_over <= 5.0 * 1e-3,
        "overflow probability {p_over} far above the 1e-3 design point"
    );
}

#[test]
fn mts_stream_needs_its_worst_subchain_rate() {
    // eq. (9): simulate the flattened MTS source at a drain rate slightly
    // above the max subchain mean but below the dominating subchain's EB:
    // overflow must be frequent. At the eq. (9) EB it must be rare.
    let slot = 1.0 / 24.0;
    let model = MtsModel::fig4_example(2e-3, slot);
    let buffer = 100_000.0;
    let qos = QosTarget::new(buffer, 1e-2);
    let (eb9, k) = mts_equivalent_bandwidth(&model, qos);
    assert_eq!(k, 2, "the high-action subchain dominates");

    let flat = model.flatten();
    let mut rng = SimRng::from_seed(11);
    let trace = flat.generate(600_000, &mut rng);

    let overflow_frequency = |rate: f64| {
        let mut q = FluidQueue::unbounded();
        let mut over = 0u64;
        for t in 0..trace.len() {
            let out = q.offer(trace.bits(t), rate * slot);
            if out.backlog > buffer {
                over += 1;
            }
        }
        over as f64 / trace.len() as f64
    };

    // Below the worst subchain's mean: every long high-action scene
    // overflows, so the frequency is large despite being above the
    // whole-stream mean rate.
    let starved = overflow_frequency(1.1 * model.mean_rate());
    assert!(
        starved > 0.05,
        "draining at 1.1x the stream mean must overflow often, got {starved}"
    );
    // At the eq. (9) equivalent bandwidth: rare.
    let provisioned = overflow_frequency(eb9);
    assert!(
        provisioned < 5e-2,
        "draining at the eq. (9) EB must be near the design point, got {provisioned}"
    );
    assert!(provisioned < starved / 3.0);
}

#[test]
fn chernoff_estimate_bounds_bufferless_failure() {
    // N iid two-level sources; capacity set so the Chernoff estimate is
    // ~1e-2; the simulated exceedance frequency must not exceed the
    // estimate (it is an upper bound up to sub-exponential factors, and
    // for two-level sources it is conservative).
    let levels = DiscreteDistribution::from_weights(&[(100_000.0, 0.75), (500_000.0, 0.25)]);
    let n = 40;
    // Find capacity where the estimate crosses 1e-2.
    let c = min_capacity_per_source(&levels, n, 1e-2);
    let capacity = c * n as f64;
    let estimate = chernoff_failure_probability(&levels, n, capacity * 1.0001);
    assert!(estimate <= 1e-2 * 1.1);

    // Simulate: each source is iid at its level each epoch (the slow
    // time-scale marginal), and we measure P(total demand > capacity).
    let mut rng = SimRng::from_seed(3);
    let mut exceed = 0u64;
    let epochs = 200_000;
    for _ in 0..epochs {
        let mut total = 0.0;
        for _ in 0..n {
            total += if rng.chance(0.25) {
                500_000.0
            } else {
                100_000.0
            };
        }
        if total > capacity {
            exceed += 1;
        }
    }
    let p_sim = exceed as f64 / epochs as f64;
    assert!(
        p_sim <= estimate * 1.2,
        "simulated exceedance {p_sim} above the Chernoff estimate {estimate}"
    );
    // And the estimate is not absurdly loose for this regime.
    assert!(
        p_sim >= estimate / 300.0,
        "estimate {estimate} too far from simulation {p_sim}"
    );
}

#[test]
fn admission_count_is_safe_in_simulation() {
    // eq. (12): admit max calls for a 1e-3 target, then verify by
    // simulation that the exceedance probability is at most the target.
    let levels = DiscreteDistribution::from_weights(&[(0.0, 0.5), (1_000_000.0, 0.5)]);
    let capacity = 30_000_000.0;
    let target = 1e-3;
    let n = max_admissible_calls(&levels, capacity, target);
    assert!(n > 30, "must beat peak-rate allocation (30), got {n}");

    let mut rng = SimRng::from_seed(9);
    let epochs = 300_000;
    let mut exceed = 0u64;
    for _ in 0..epochs {
        let mut on = 0u64;
        for _ in 0..n {
            if rng.chance(0.5) {
                on += 1;
            }
        }
        if on as f64 * 1_000_000.0 > capacity {
            exceed += 1;
        }
    }
    let p_sim = exceed as f64 / epochs as f64;
    assert!(
        p_sim <= target,
        "simulated failure {p_sim} above target {target}"
    );
}
