//! Graceful degradation end to end: when capacity makes upward
//! renegotiation futile, sources exhaust their retry budgets, keep their
//! last granted rate (the paper's fallback), and the run finishes with
//! degraded VCs, zero panics, and bounded end-system loss.

use rcbr_suite::prelude::*;

#[test]
fn futile_retries_degrade_gracefully() {
    let mut cfg = RuntimeConfig::balanced(2, 24);
    cfg.target_requests = 1_200;
    // Essentially zero headroom above the initial admission load: every
    // upward renegotiation — and every retry of it — is denied.
    let flows_per_switch = (cfg.num_vcs * cfg.hops_per_vc) as f64 / cfg.num_switches as f64;
    cfg.port_capacity = flows_per_switch * cfg.initial_rate * 1.0001;
    cfg.fault = FaultConfig::transparent();
    cfg.retry_budget = 2;
    cfg.backoff_base = 2;

    let report = run_signaling(&cfg);
    let c = &report.counters;
    assert!(c.completed >= 1_200, "target not reached: {c:?}");
    assert_eq!(
        c.completed,
        c.accepted + c.exhausted,
        "fate accounting broken: {c:?}"
    );
    assert!(c.denied > 0, "the capacity wall never denied: {c:?}");
    assert!(c.retries > 0, "denials must be retried: {c:?}");
    assert!(c.exhausted > 0, "futile retries must exhaust: {c:?}");
    assert!(
        report.degraded_vcs > 0,
        "some VC must end degraded: {report:?}"
    );
    assert_eq!(c.degraded_events, report.degraded_vcs, "degraded once each");
    // No faults were injected, so nothing ever times out and recovery
    // leaves no residual drift.
    assert_eq!(c.timeouts, 0);
    assert_eq!(report.audit.final_drift, 0, "{:?}", report.audit);
    assert_eq!(report.audit.port_inconsistencies, 0);
    // Degraded sources keep streaming at their last granted rate: loss is
    // real (the trace wants more than the pinned rate) but bounded — no
    // source loses everything, and the population average stays moderate.
    assert!(
        report.max_source_loss < 0.95,
        "worst source loss unbounded: {}",
        report.max_source_loss
    );
    assert!(
        report.mean_source_loss < 0.6,
        "mean source loss unbounded: {}",
        report.mean_source_loss
    );
}
